//! Trained-model inference for LDA (paper §II-D: "Once trained, these
//! tables may be used to infer the distribution of topics for new
//! documents").
//!
//! [`TopicModel`] freezes the Vocabulary–Topic statistics of a trained
//! [`Lda`](super::Lda) into per-topic word distributions; new documents are
//! folded in by Gibbs sampling against the frozen topics, and model fit is
//! summarized by held-out perplexity.

use coopmc_rng::HwRng;

use super::Lda;

/// A frozen topic model: smoothed per-topic word distributions
/// `φ[t][v] = (VT[t][v] + β) / (Σ_v VT[t][v] + βV)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicModel {
    phi: Vec<Vec<f64>>,
    alpha: f64,
    n_vocab: usize,
}

impl TopicModel {
    /// Freeze the topic–word distributions of a trained model, keeping the
    /// training `alpha` for fold-in smoothing.
    pub fn from_trained(lda: &Lda, alpha: f64) -> Self {
        let v = lda.n_vocab();
        let phi = (0..lda.n_topics())
            .map(|t| {
                let denom = lda.topic_total(t) as f64 + 0.01 * v as f64;
                (0..v)
                    .map(|w| (lda.vt(t, w) as f64 + 0.01) / denom)
                    .collect()
            })
            .collect();
        Self {
            phi,
            alpha,
            n_vocab: v,
        }
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.phi.len()
    }

    /// The word distribution of `topic`.
    ///
    /// # Panics
    ///
    /// Panics if `topic` is out of range.
    pub fn phi(&self, topic: usize) -> &[f64] {
        &self.phi[topic]
    }

    /// The `k` highest-probability words of `topic`, best first.
    ///
    /// # Panics
    ///
    /// Panics if `topic` is out of range.
    pub fn top_words(&self, topic: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.n_vocab).collect();
        idx.sort_by(|&a, &b| self.phi[topic][b].partial_cmp(&self.phi[topic][a]).unwrap());
        idx.truncate(k);
        idx
    }

    /// Infer the topic mixture `θ` of a new document by fold-in Gibbs:
    /// the document's token–topic assignments are resampled for
    /// `iterations` sweeps against the frozen `φ`, then `θ` is read off the
    /// smoothed assignment counts.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or contains an out-of-vocabulary word.
    pub fn infer_document(
        &self,
        words: &[usize],
        iterations: u64,
        rng: &mut dyn HwRng,
    ) -> Vec<f64> {
        assert!(!words.is_empty(), "document must contain words");
        assert!(
            words.iter().all(|&w| w < self.n_vocab),
            "word out of vocabulary"
        );
        let k = self.n_topics();
        let mut z: Vec<usize> = words.iter().map(|_| rng.uniform_index(k)).collect();
        let mut counts = vec![0usize; k];
        for &t in &z {
            counts[t] += 1;
        }
        let mut probs = vec![0.0; k];
        for _ in 0..iterations {
            for (i, &w) in words.iter().enumerate() {
                counts[z[i]] -= 1;
                for t in 0..k {
                    probs[t] = (counts[t] as f64 + self.alpha) * self.phi[t][w];
                }
                let total: f64 = probs.iter().sum();
                let mut threshold = rng.next_f64() * total;
                let mut new_t = k - 1;
                for (t, &p) in probs.iter().enumerate() {
                    if threshold < p {
                        new_t = t;
                        break;
                    }
                    threshold -= p;
                }
                z[i] = new_t;
                counts[new_t] += 1;
            }
        }
        let denom = words.len() as f64 + self.alpha * k as f64;
        counts
            .iter()
            .map(|&c| (c as f64 + self.alpha) / denom)
            .collect()
    }

    /// Held-out perplexity of a set of documents:
    /// `exp(− Σ_dw log Σ_t θ_d[t]·φ_t[w] / N)`. Lower is better.
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty or any document is empty.
    pub fn perplexity(&self, docs: &[Vec<usize>], iterations: u64, rng: &mut dyn HwRng) -> f64 {
        assert!(!docs.is_empty(), "need at least one document");
        let mut log_sum = 0.0;
        let mut n_words = 0usize;
        for doc in docs {
            let theta = self.infer_document(doc, iterations, rng);
            for &w in doc {
                let p: f64 = theta
                    .iter()
                    .enumerate()
                    .map(|(t, &th)| th * self.phi[t][w])
                    .sum();
                log_sum += p.max(1e-300).ln();
                n_words += 1;
            }
        }
        (-log_sum / n_words as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{synthetic_corpus, CorpusSpec};
    use crate::GibbsModel;
    use coopmc_rng::SplitMix64;

    fn trained_model() -> (TopicModel, usize) {
        let spec = CorpusSpec {
            n_docs: 30,
            n_vocab: 60,
            n_topics: 3,
            doc_len: 50,
            topics_per_doc: 1,
            seed: 2,
        };
        let corpus = synthetic_corpus(&spec);
        let mut lda = Lda::new(&corpus, 3, 0.5, 0.01);
        lda.randomize_topics(4);
        // quick in-crate training loop with float math
        let mut rng = SplitMix64::new(6);
        let mut scores = Vec::new();
        for _ in 0..40 {
            for i in 0..lda.num_variables() {
                lda.begin_resample(i);
                lda.scores(i, &mut scores);
                let probs: Vec<f64> = scores.iter().map(|s| s.reference_value()).collect();
                let total: f64 = probs.iter().sum();
                let mut t = rng.next_f64() * total;
                let mut label = probs.len() - 1;
                for (k, &p) in probs.iter().enumerate() {
                    if t < p {
                        label = k;
                        break;
                    }
                    t -= p;
                }
                lda.update(i, label);
            }
        }
        (TopicModel::from_trained(&lda, 0.5), spec.n_vocab)
    }

    #[test]
    fn phi_rows_are_distributions() {
        let (model, _) = trained_model();
        for t in 0..model.n_topics() {
            let sum: f64 = model.phi(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "phi[{t}] sums to {sum}");
        }
    }

    #[test]
    fn top_words_stay_within_a_band() {
        // Planted topics concentrate on vocabulary bands of width 20; a
        // trained topic's top words should mostly share one band.
        let (model, n_vocab) = trained_model();
        let band = n_vocab / 3;
        for t in 0..model.n_topics() {
            let top = model.top_words(t, 8);
            let mut per_band = [0usize; 3];
            for w in top {
                per_band[(w / band).min(2)] += 1;
            }
            let max = *per_band.iter().max().unwrap();
            assert!(max >= 6, "topic {t} top words scattered: {per_band:?}");
        }
    }

    #[test]
    fn inferred_theta_matches_document_band() {
        let (model, n_vocab) = trained_model();
        let band = n_vocab / 3;
        let mut rng = SplitMix64::new(8);
        // A document drawn purely from the middle band.
        let doc: Vec<usize> = (0..40).map(|i| band + (i % band)).collect();
        let theta = model.infer_document(&doc, 30, &mut rng);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let best = theta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(*best.1 > 0.6, "dominant topic weight {:?}", theta);
        // the dominant topic's top words should live in the same band
        let top = model.top_words(best.0, 5);
        assert!(
            top.iter().filter(|&&w| w / band == 1).count() >= 4,
            "{top:?}"
        );
    }

    #[test]
    fn perplexity_prefers_in_distribution_documents() {
        let (model, n_vocab) = trained_model();
        let band = n_vocab / 3;
        let mut rng = SplitMix64::new(10);
        let in_dist: Vec<Vec<usize>> = (0..4)
            .map(|d| (0..30).map(|i| ((d + i) % band) + band).collect())
            .collect();
        // scrambled documents: uniform over vocabulary
        let mut rng2 = SplitMix64::new(11);
        let scrambled: Vec<Vec<usize>> = (0..4)
            .map(|_| (0..30).map(|_| rng2.uniform_index(n_vocab)).collect())
            .collect();
        let p_in = model.perplexity(&in_dist, 25, &mut rng);
        let p_out = model.perplexity(&scrambled, 25, &mut rng);
        assert!(
            p_in < p_out,
            "in-distribution perplexity {p_in} must beat scrambled {p_out}"
        );
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_word_panics() {
        let (model, n_vocab) = trained_model();
        let mut rng = SplitMix64::new(1);
        let _ = model.infer_document(&[n_vocab + 5], 5, &mut rng);
    }
}
