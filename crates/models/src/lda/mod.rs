//! Latent Dirichlet Allocation with collapsed Gibbs sampling
//! (paper §II-D, Eq. 6).
//!
//! Each token is a random variable whose label is its topic. The collapsed
//! sampler maintains the Document–Topic (DT) and Vocabulary–Topic (VT) count
//! tables; resampling token `i` removes it from the counts, scores every
//! topic with
//!
//! ```text
//!   P(k) ∝ (DT[d][k] + α) · (VT[k][v] + β) / (Σ_v VT[k][v] + βV)
//! ```
//!
//! and re-adds it under the sampled topic — a multiply/divide factor
//! expression, the LogFusion showcase.

mod corpus;
mod inference;
pub mod sparse;

pub use corpus::{synthetic_corpus, Corpus, CorpusSpec};
pub use inference::TopicModel;

use crate::{GibbsModel, LabelScore};

/// A collapsed-Gibbs LDA model over a fixed corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Lda {
    n_docs: usize,
    n_vocab: usize,
    n_topics: usize,
    alpha: f64,
    beta: f64,
    /// `(doc, word)` per token.
    tokens: Vec<(u32, u32)>,
    /// Topic assignment per token.
    z: Vec<u32>,
    /// `dt[d * n_topics + k]`.
    dt: Vec<u32>,
    /// `vt[k * n_vocab + v]`.
    vt: Vec<u32>,
    /// `topic_total[k] = Σ_v vt[k][v]`.
    topic_total: Vec<u32>,
}

impl Lda {
    /// Build a model over `corpus` with `n_topics` topics and symmetric
    /// Dirichlet hyper-parameters `alpha` (doc–topic) and `beta`
    /// (topic–word). All tokens start in topic 0; call
    /// [`Lda::randomize_topics`] for the usual random initialization.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty, `n_topics < 2`, or the
    /// hyper-parameters are not positive.
    pub fn new(corpus: &Corpus, n_topics: usize, alpha: f64, beta: f64) -> Self {
        assert!(!corpus.tokens.is_empty(), "corpus must contain tokens");
        assert!(n_topics >= 2, "need at least two topics");
        assert!(
            alpha > 0.0 && beta > 0.0,
            "hyper-parameters must be positive"
        );
        let mut model = Self {
            n_docs: corpus.n_docs,
            n_vocab: corpus.n_vocab,
            n_topics,
            alpha,
            beta,
            tokens: corpus.tokens.clone(),
            z: vec![0; corpus.tokens.len()],
            dt: vec![0; corpus.n_docs * n_topics],
            vt: vec![0; n_topics * corpus.n_vocab],
            topic_total: vec![0; n_topics],
        };
        for i in 0..model.tokens.len() {
            model.add_token(i);
        }
        model
    }

    /// Assign every token a deterministic pseudo-random topic (hash of its
    /// index), the usual Gibbs initialization.
    pub fn randomize_topics(&mut self, seed: u64) {
        use coopmc_rng::{HwRng, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        for i in 0..self.tokens.len() {
            self.remove_token(i);
            self.z[i] = rng.uniform_index(self.n_topics) as u32;
            self.add_token(i);
        }
    }

    /// Number of topics.
    pub fn n_topics(&self) -> usize {
        self.n_topics
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Vocabulary size.
    pub fn n_vocab(&self) -> usize {
        self.n_vocab
    }

    /// Document–Topic count.
    pub fn dt(&self, doc: usize, topic: usize) -> u32 {
        self.dt[doc * self.n_topics + topic]
    }

    /// Vocabulary–Topic count.
    pub fn vt(&self, topic: usize, word: usize) -> u32 {
        self.vt[topic * self.n_vocab + word]
    }

    /// Total tokens currently assigned to `topic`.
    pub fn topic_total(&self, topic: usize) -> u32 {
        self.topic_total[topic]
    }

    /// The `(document, word)` of token `i`.
    pub fn token(&self, i: usize) -> (usize, usize) {
        let (d, v) = self.tokens[i];
        (d as usize, v as usize)
    }

    /// The document–topic hyper-parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The topic–word hyper-parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    fn add_token(&mut self, i: usize) {
        let (d, v) = self.tokens[i];
        let k = self.z[i] as usize;
        self.dt[d as usize * self.n_topics + k] += 1;
        self.vt[k * self.n_vocab + v as usize] += 1;
        self.topic_total[k] += 1;
    }

    fn remove_token(&mut self, i: usize) {
        let (d, v) = self.tokens[i];
        let k = self.z[i] as usize;
        self.dt[d as usize * self.n_topics + k] -= 1;
        self.vt[k * self.n_vocab + v as usize] -= 1;
        self.topic_total[k] -= 1;
    }

    /// Corpus log-likelihood `log P(w | z)` (Griffiths & Steyvers 2004):
    /// the standard LDA quality metric — higher is better.
    pub fn log_likelihood(&self) -> f64 {
        let v = self.n_vocab as f64;
        let mut ll = self.n_topics as f64 * (ln_gamma(v * self.beta) - v * ln_gamma(self.beta));
        for k in 0..self.n_topics {
            for w in 0..self.n_vocab {
                let n = self.vt[k * self.n_vocab + w] as f64;
                if n > 0.0 {
                    ll += ln_gamma(n + self.beta) - ln_gamma(self.beta);
                }
            }
            ll -= ln_gamma(self.topic_total[k] as f64 + v * self.beta) - ln_gamma(v * self.beta);
        }
        ll
    }
}

impl GibbsModel for Lda {
    fn num_variables(&self) -> usize {
        self.tokens.len()
    }

    fn num_labels(&self, _var: usize) -> usize {
        self.n_topics
    }

    fn begin_resample(&mut self, var: usize) {
        self.remove_token(var);
    }

    fn scores(&self, var: usize, out: &mut Vec<LabelScore>) {
        out.clear();
        let (d, v) = self.tokens[var];
        for k in 0..self.n_topics {
            let dt = self.dt[d as usize * self.n_topics + k] as f64;
            let vt = self.vt[k * self.n_vocab + v as usize] as f64;
            let total = self.topic_total[k] as f64;
            out.push(LabelScore::Factors {
                numerators: vec![dt + self.alpha, vt + self.beta],
                denominators: vec![total + self.beta * self.n_vocab as f64],
            });
        }
    }

    fn scores_into(&self, var: usize, out: &mut Vec<LabelScore>) {
        let (d, v) = self.tokens[var];
        out.truncate(self.n_topics);
        out.resize_with(self.n_topics, || LabelScore::Factors {
            numerators: Vec::new(),
            denominators: Vec::new(),
        });
        for (k, slot) in out.iter_mut().enumerate() {
            if !matches!(slot, LabelScore::Factors { .. }) {
                *slot = LabelScore::Factors {
                    numerators: Vec::new(),
                    denominators: Vec::new(),
                };
            }
            let LabelScore::Factors {
                numerators,
                denominators,
            } = slot
            else {
                unreachable!()
            };
            let dt = self.dt[d as usize * self.n_topics + k] as f64;
            let vt = self.vt[k * self.n_vocab + v as usize] as f64;
            let total = self.topic_total[k] as f64;
            numerators.clear();
            numerators.push(dt + self.alpha);
            numerators.push(vt + self.beta);
            denominators.clear();
            denominators.push(total + self.beta * self.n_vocab as f64);
        }
    }

    fn update(&mut self, var: usize, label: usize) {
        assert!(label < self.n_topics, "topic out of range");
        self.z[var] = label as u32;
        self.add_token(var);
    }

    fn label(&self, var: usize) -> usize {
        self.z[var] as usize
    }
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 over the positive reals used here. Implemented
/// locally because the approved dependency set has no special-functions
/// crate.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps small arguments accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9_f64;
    for (i, &c) in COEFFS.iter().enumerate() {
        a += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        // 2 docs, 4 vocab words, 8 tokens.
        Corpus {
            n_docs: 2,
            n_vocab: 4,
            tokens: vec![
                (0, 0),
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (1, 3),
                (1, 3),
            ],
        }
    }

    #[test]
    fn counts_are_consistent_after_construction() {
        let lda = Lda::new(&tiny_corpus(), 2, 0.1, 0.01);
        // everything starts in topic 0
        assert_eq!(lda.topic_total(0), 8);
        assert_eq!(lda.topic_total(1), 0);
        assert_eq!(lda.dt(0, 0), 4);
        assert_eq!(lda.vt(0, 3), 3);
    }

    #[test]
    fn count_conservation_through_resampling() {
        let mut lda = Lda::new(&tiny_corpus(), 3, 0.1, 0.01);
        lda.randomize_topics(9);
        let total: u32 = (0..3).map(|k| lda.topic_total(k)).sum();
        assert_eq!(total, 8);
        lda.begin_resample(5);
        let total_mid: u32 = (0..3).map(|k| lda.topic_total(k)).sum();
        assert_eq!(total_mid, 7);
        lda.update(5, 2);
        let total_after: u32 = (0..3).map(|k| lda.topic_total(k)).sum();
        assert_eq!(total_after, 8);
        assert_eq!(lda.label(5), 2);
    }

    #[test]
    fn scores_match_eq_6() {
        let mut lda = Lda::new(&tiny_corpus(), 2, 0.5, 0.1);
        lda.begin_resample(0);
        let mut out = Vec::new();
        lda.scores(0, &mut out);
        let v = 4.0;
        // token 0: doc 0, word 0. After removal: dt(0,0)=3, vt(0,0)=1, total=7
        let expect0 = (3.0 + 0.5) * (1.0 + 0.1) / (7.0 + 0.1 * v);
        assert!((out[0].reference_value() - expect0).abs() < 1e-12);
        let expect1 = 0.5 * 0.1 / (0.1 * v);
        assert!((out[1].reference_value() - expect1).abs() < 1e-12);
        lda.update(0, 0);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn log_likelihood_improves_when_topics_separate() {
        // Clustered assignment (doc0->topic0, doc1->topic1) must beat the
        // everything-in-one-topic assignment for this separable corpus.
        let corpus = tiny_corpus();
        let lumped = Lda::new(&corpus, 2, 0.1, 0.01);
        let mut split = Lda::new(&corpus, 2, 0.1, 0.01);
        for i in 4..8 {
            split.begin_resample(i);
            split.update(i, 1);
        }
        assert!(split.log_likelihood() > lumped.log_likelihood());
    }

    #[test]
    fn randomize_topics_is_deterministic_and_spreads() {
        let corpus = tiny_corpus();
        let mut a = Lda::new(&corpus, 4, 0.1, 0.01);
        let mut b = Lda::new(&corpus, 4, 0.1, 0.01);
        a.randomize_topics(3);
        b.randomize_topics(3);
        assert_eq!(a, b);
        let used = (0..4).filter(|&k| a.topic_total(k) > 0).count();
        assert!(used >= 2, "random init must use multiple topics");
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
