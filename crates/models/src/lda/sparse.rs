//! SparseLDA bucket-decomposition sampling (Yao, Mimno & McCallum, KDD'09 —
//! the paper's reference \[29\]).
//!
//! The collapsed-Gibbs topic score factors exactly into three buckets:
//!
//! ```text
//!   P(k) ∝ (n_dk + α)(n_wk + β) / (n_k + βV)
//!        =  αβ / (n_k + βV)                    — smoothing bucket  s
//!        +  n_dk · β / (n_k + βV)              — document bucket   r
//!        +  (n_dk + α) · n_wk / (n_k + βV)     — topic-word bucket q
//! ```
//!
//! `r` is nonzero only for the topics present in the document and `q` only
//! for the topics the word has been seen under, so a draw usually touches
//! a handful of topics instead of all `K` — the software counterpart of
//! the paper's hardware SD optimization. The decomposition here is *exact*
//! (verified against the dense Eq. 6 score in the tests).

use coopmc_rng::HwRng;

use super::Lda;

/// The three-bucket decomposition of one token's topic distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketDecomposition {
    /// Total smoothing mass `Σ_k αβ/(n_k + βV)`.
    pub s_total: f64,
    /// Document bucket: `(topic, mass)` for topics with `n_dk > 0`.
    pub r: Vec<(usize, f64)>,
    /// Topic-word bucket: `(topic, mass)` for topics with `n_wk > 0`.
    pub q: Vec<(usize, f64)>,
    /// Per-topic smoothing masses (needed to finish an `s`-bucket draw).
    pub s: Vec<f64>,
}

impl BucketDecomposition {
    /// Total mass across all buckets.
    pub fn total(&self) -> f64 {
        self.s_total
            + self.r.iter().map(|&(_, m)| m).sum::<f64>()
            + self.q.iter().map(|&(_, m)| m).sum::<f64>()
    }

    /// The dense per-topic mass implied by the buckets (test oracle).
    pub fn dense(&self, n_topics: usize) -> Vec<f64> {
        let mut out = self.s.clone();
        out.resize(n_topics, 0.0);
        for &(k, m) in &self.r {
            out[k] += m;
        }
        for &(k, m) in &self.q {
            out[k] += m;
        }
        out
    }
}

/// Compute the exact bucket decomposition for `token` (which must already
/// be removed from the counts via
/// [`GibbsModel::begin_resample`](crate::GibbsModel::begin_resample)).
pub fn decompose(lda: &Lda, token: usize) -> BucketDecomposition {
    let (doc, word) = lda.token(token);
    let k_count = lda.n_topics();
    let v = lda.n_vocab() as f64;
    let (alpha, beta) = (lda.alpha(), lda.beta());
    let mut s = Vec::with_capacity(k_count);
    let mut s_total = 0.0;
    let mut r = Vec::new();
    let mut q = Vec::new();
    for k in 0..k_count {
        let denom = lda.topic_total(k) as f64 + beta * v;
        let s_k = alpha * beta / denom;
        s.push(s_k);
        s_total += s_k;
        let n_dk = lda.dt(doc, k) as f64;
        if n_dk > 0.0 {
            r.push((k, n_dk * beta / denom));
        }
        let n_wk = lda.vt(k, word) as f64;
        if n_wk > 0.0 {
            q.push((k, (n_dk + alpha) * n_wk / denom));
        }
    }
    BucketDecomposition { s_total, r, q, s }
}

/// Draw a topic for `token` by bucket sampling: check the cheap `q` and `r`
/// buckets first, falling through to the smoothing bucket — the SparseLDA
/// fast path.
///
/// The caller must have called `begin_resample(token)`; the caller commits
/// the returned topic with `update(token, k)`.
pub fn sample_token(lda: &Lda, token: usize, rng: &mut dyn HwRng) -> usize {
    let b = decompose(lda, token);
    let mut u = rng.next_f64() * b.total();
    // q bucket (usually the largest mass, checked first).
    for &(k, m) in &b.q {
        if u < m {
            return k;
        }
        u -= m;
    }
    for &(k, m) in &b.r {
        if u < m {
            return k;
        }
        u -= m;
    }
    for (k, &m) in b.s.iter().enumerate() {
        if u < m {
            return k;
        }
        u -= m;
    }
    // Floating residue: the last topic.
    lda.n_topics() - 1
}

/// One full SparseLDA sweep over every token.
pub fn sparse_sweep(lda: &mut Lda, rng: &mut dyn HwRng) {
    use crate::GibbsModel;
    for token in 0..lda.num_variables() {
        lda.begin_resample(token);
        let k = sample_token(lda, token, rng);
        lda.update(token, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{synthetic_corpus, CorpusSpec};
    use crate::{GibbsModel, LabelScore};
    use coopmc_rng::SplitMix64;

    fn model() -> Lda {
        let corpus = synthetic_corpus(&CorpusSpec {
            n_docs: 10,
            n_vocab: 40,
            n_topics: 5,
            doc_len: 20,
            topics_per_doc: 2,
            seed: 6,
        });
        let mut lda = Lda::new(&corpus, 5, 0.4, 0.05);
        lda.randomize_topics(3);
        lda
    }

    #[test]
    fn buckets_sum_exactly_to_dense_scores() {
        let mut lda = model();
        for token in [0usize, 7, 53, 120, 199] {
            lda.begin_resample(token);
            let b = decompose(&lda, token);
            let dense_from_buckets = b.dense(5);
            let mut scores = Vec::new();
            lda.scores(token, &mut scores);
            for (k, s) in scores.iter().enumerate() {
                let want = match s {
                    LabelScore::Factors { .. } => s.reference_value(),
                    _ => unreachable!(),
                };
                assert!(
                    (dense_from_buckets[k] - want).abs() < 1e-12,
                    "token {token} topic {k}: bucket {} dense {want}",
                    dense_from_buckets[k]
                );
            }
            lda.update(token, 0);
        }
    }

    #[test]
    fn bucket_sparsity_holds() {
        let mut lda = model();
        lda.begin_resample(0);
        let b = decompose(&lda, 0);
        // r has at most as many entries as topics in the document, q at
        // most as many as topics of the word — both at most K.
        assert!(b.r.len() <= 5 && b.q.len() <= 5);
        assert!(b.s_total > 0.0);
        lda.update(0, 0);
    }

    #[test]
    fn sparse_sampler_matches_dense_distribution_statistically() {
        let mut lda = model();
        lda.begin_resample(11);
        let b = decompose(&lda, 11);
        let dense = b.dense(5);
        let total: f64 = dense.iter().sum();
        let mut rng = SplitMix64::new(12);
        let draws = 40_000;
        let mut counts = vec![0u64; 5];
        for _ in 0..draws {
            counts[sample_token(&lda, 11, &mut rng)] += 1;
        }
        let chi2: f64 = dense
            .iter()
            .zip(&counts)
            .map(|(&p, &c)| {
                let e = draws as f64 * p / total;
                (c as f64 - e).powi(2) / e
            })
            .sum();
        assert!(chi2 < 20.0, "chi2 {chi2}, counts {counts:?}");
        lda.update(11, 0);
    }

    #[test]
    fn sparse_sweeps_improve_loglik_like_dense() {
        let mut lda = model();
        let ll0 = lda.log_likelihood();
        let mut rng = SplitMix64::new(4);
        for _ in 0..20 {
            sparse_sweep(&mut lda, &mut rng);
        }
        let ll = lda.log_likelihood();
        assert!(ll > ll0, "SparseLDA must converge: {ll0} -> {ll}");
        // Count conservation after many sweeps.
        let total: u32 = (0..5).map(|k| lda.topic_total(k)).sum();
        assert_eq!(total, 200);
    }
}
