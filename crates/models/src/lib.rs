//! Bayesian model substrates for CoopMC: Markov random fields, Bayesian
//! networks and latent Dirichlet allocation.
//!
//! The paper evaluates its accelerator optimizations on ten workloads over
//! three model families (Table I). This crate implements all three model
//! families from scratch, each exposing its Gibbs-sampling structure through
//! the [`GibbsModel`] trait so the engine in `coopmc-core` can drive any of
//! them through any Probability Generation datapath:
//!
//! - [`mrf`] — 4-connected grid Markov random fields with pluggable
//!   data/smooth cost functions and the paper's four applications
//!   (image restoration, stereo matching, image segmentation, sound source
//!   separation).
//! - [`bn`] — discrete Bayesian networks with evidence, the three published
//!   benchmark networks (ASIA, EARTHQUAKE, SURVEY), and exact inference by
//!   variable elimination for golden references.
//! - [`lda`] — collapsed-Gibbs latent Dirichlet allocation with synthetic
//!   corpora shaped like the paper's NIPS / Enron / RNA workloads.
//! - [`workloads`] — the Table I registry mapping every paper workload to a
//!   scaled, reproducible configuration.
//! - [`metrics`] — the evaluation metrics of §II-A (normalized MSE,
//!   convergence traces).

pub mod bn;
pub mod coloring;
pub mod diagnostics;
pub mod lda;
pub mod metrics;
pub mod mrf;
pub mod workloads;

/// The per-label input handed from a model to the Probability Generation
/// step.
///
/// MRFs produce scores already in the log domain (`-β · TotalCost`, Eq. 4);
/// Bayesian networks and LDA produce products/ratios of linear-domain
/// factors (Eq. 5, Eq. 6). The PG pipeline decides how to evaluate either
/// form (directly, or fused in the log domain).
#[derive(Debug, Clone, PartialEq)]
pub enum LabelScore {
    /// The score is `log p` (natural log), e.g. a negated, scaled MRF
    /// energy.
    LogDomain(f64),
    /// The score is `Π numerators / Π denominators` of linear-domain
    /// factors.
    Factors {
        /// Numerator factors `a_i` of Eq. 11.
        numerators: Vec<f64>,
        /// Denominator factors `b_j` of Eq. 11.
        denominators: Vec<f64>,
    },
}

impl LabelScore {
    /// Exact (float) probability value of this score.
    pub fn reference_value(&self) -> f64 {
        match self {
            LabelScore::LogDomain(s) => s.exp(),
            LabelScore::Factors {
                numerators,
                denominators,
            } => {
                let num: f64 = numerators.iter().product();
                let den: f64 = denominators.iter().product();
                if den == 0.0 {
                    0.0
                } else {
                    num / den
                }
            }
        }
    }
}

/// A model that can be trained by single-site Gibbs sampling through the
/// three-step PG → SD → PU flow of the paper (§III, Fig. 1).
pub trait GibbsModel {
    /// Number of random variables in the model.
    fn num_variables(&self) -> usize;

    /// Number of labels variable `var` can take.
    fn num_labels(&self, var: usize) -> usize;

    /// True if `var` is clamped (e.g. Bayesian-network evidence) and must
    /// not be resampled.
    fn is_clamped(&self, var: usize) -> bool {
        let _ = var;
        false
    }

    /// Prepare to resample `var`: remove its current assignment from any
    /// sufficient statistics (collapsed samplers need this; default no-op).
    fn begin_resample(&mut self, var: usize) {
        let _ = var;
    }

    /// Fill `out` with one [`LabelScore`] per label of `var`, given the
    /// current state of every other variable (the PG input).
    fn scores(&self, var: usize, out: &mut Vec<LabelScore>);

    /// Like [`GibbsModel::scores`], but allowed to **recycle the existing
    /// contents of `out`** — in particular the inner numerator/denominator
    /// vectors of [`LabelScore::Factors`] entries left over from a previous
    /// call — instead of rebuilding them.
    ///
    /// The result must be identical to `scores`; only allocation behaviour
    /// may differ. The engine's hot path calls this with a long-lived
    /// buffer, so models whose `scores` builds per-label `Factors` should
    /// override it to be allocation-free in steady state. The default
    /// simply delegates to `scores` (already allocation-free for log-domain
    /// models such as the grid MRF).
    fn scores_into(&self, var: usize, out: &mut Vec<LabelScore>) {
        self.scores(var, out);
    }

    /// Commit the sampled label for `var` (the PU step).
    fn update(&mut self, var: usize, label: usize);

    /// Current label of `var`.
    fn label(&self, var: usize) -> usize;

    /// Snapshot of all labels.
    fn labels(&self) -> Vec<usize> {
        (0..self.num_variables()).map(|v| self.label(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_score_reference_values() {
        assert!((LabelScore::LogDomain(0.0).reference_value() - 1.0).abs() < 1e-15);
        let f = LabelScore::Factors {
            numerators: vec![0.5, 0.5],
            denominators: vec![0.25],
        };
        assert!((f.reference_value() - 1.0).abs() < 1e-15);
        let z = LabelScore::Factors {
            numerators: vec![1.0],
            denominators: vec![0.0],
        };
        assert_eq!(z.reference_value(), 0.0);
    }
}
