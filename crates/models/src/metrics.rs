//! Evaluation metrics (paper §II-A).
//!
//! Most of the paper's workloads are unsupervised, so quality is measured
//! against a *golden* reference produced by the vanilla floating-point
//! algorithm: mean-square error of the label field, normalized by the MSE of
//! an untrained model so different applications are comparable.

/// Mean-square error between two label fields.
///
/// # Panics
///
/// Panics if the fields differ in length or are empty.
pub fn mse(labels: &[usize], golden: &[usize]) -> f64 {
    assert_eq!(
        labels.len(),
        golden.len(),
        "label fields must match in length"
    );
    assert!(!labels.is_empty(), "label fields must be non-empty");
    labels
        .iter()
        .zip(golden)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum::<f64>()
        / labels.len() as f64
}

/// MSE normalized by the MSE of an untrained (initial) model, the paper's
/// cross-application metric: 0 is a perfect match to the golden result, 1 is
/// no better than the initial state.
///
/// # Panics
///
/// Panics if the untrained MSE is zero (the golden field equals the initial
/// field, so normalization is undefined) or the fields mismatch.
pub fn normalized_mse(labels: &[usize], golden: &[usize], untrained: &[usize]) -> f64 {
    let base = mse(untrained, golden);
    assert!(
        base > 0.0,
        "untrained MSE must be positive for normalization"
    );
    mse(labels, golden) / base
}

/// A convergence trace: one metric sample per recorded iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    samples: Vec<(u64, f64)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` at `iteration`.
    pub fn push(&mut self, iteration: u64, value: f64) {
        self.samples.push((iteration, value));
    }

    /// All `(iteration, value)` samples in insertion order.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// The last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Mean of the final `k` samples (converged-value estimate).
    ///
    /// # Panics
    ///
    /// Panics if the trace holds fewer than `k` samples or `k == 0`.
    pub fn tail_mean(&self, k: usize) -> f64 {
        assert!(k > 0 && k <= self.samples.len(), "invalid tail length");
        let tail = &self.samples[self.samples.len() - k..];
        tail.iter().map(|&(_, v)| v).sum::<f64>() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_fields_is_zero() {
        assert_eq!(mse(&[1, 2, 3], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn mse_counts_squared_label_distance() {
        assert_eq!(mse(&[0, 0], &[2, 0]), 2.0);
    }

    #[test]
    fn normalized_mse_is_relative_to_untrained() {
        let golden = [5, 5, 5, 5];
        let untrained = [0, 0, 0, 0];
        let half = [5, 5, 0, 0];
        assert_eq!(normalized_mse(&half, &golden, &untrained), 0.5);
        assert_eq!(normalized_mse(&golden, &golden, &untrained), 0.0);
        assert_eq!(normalized_mse(&untrained, &golden, &untrained), 1.0);
    }

    #[test]
    #[should_panic(expected = "must match in length")]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1], &[1, 2]);
    }

    #[test]
    fn trace_tail_mean() {
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.push(i, i as f64);
        }
        assert_eq!(t.tail_mean(2), 8.5);
        assert_eq!(t.last_value(), Some(9.0));
        assert_eq!(t.samples().len(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid tail length")]
    fn tail_longer_than_trace_panics() {
        Trace::new().tail_mean(1);
    }
}
