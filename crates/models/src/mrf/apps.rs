//! The four MRF application workloads (paper §II-B).
//!
//! The paper's inputs (images, stereo pairs, audio mixtures) are replaced by
//! deterministic synthetic generators producing observation fields with the
//! same structure and label statistics — see `DESIGN.md` §2. Each generator
//! returns the configured [`GridMrf`] together with the clean ground-truth
//! field the observations were corrupted from.

use coopmc_rng::{HwRng, SplitMix64};

use super::{CostFn, GridMrf};

/// A generated MRF application workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MrfApp {
    /// Human-readable application name.
    pub name: &'static str,
    /// The configured model, initialized from the noisy observations.
    pub mrf: GridMrf,
    /// The clean (pre-corruption) label field.
    pub clean: Vec<usize>,
}

/// Draw a standard Gaussian via Box–Muller from a hardware RNG.
fn gaussian(rng: &mut SplitMix64) -> f64 {
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A smooth synthetic "photograph": a sum of 2-D Gaussian bumps plus an
/// intensity ramp, quantized onto `[0, n_labels)`.
fn smooth_scene(width: usize, height: usize, n_labels: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let bumps: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            (
                rng.next_f64() * width as f64,
                rng.next_f64() * height as f64,
                (0.1 + 0.2 * rng.next_f64()) * width as f64, // radius
                0.5 + rng.next_f64(),                        // amplitude
            )
        })
        .collect();
    let mut field = Vec::with_capacity(width * height);
    let mut max_v: f64 = 0.0;
    let mut raw = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let mut v = 0.3 * x as f64 / width as f64 + 0.2 * y as f64 / height as f64;
            for &(bx, by, r, a) in &bumps {
                let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
                v += a * (-d2 / (2.0 * r * r)).exp();
            }
            max_v = max_v.max(v);
            raw.push(v);
        }
    }
    for v in raw {
        let l = (v / max_v * (n_labels - 1) as f64).round() as usize;
        field.push(l.min(n_labels - 1));
    }
    field
}

/// **Image Restoration** (64 labels): restore a grayscale image corrupted
/// with Gaussian noise and opaque black boxes.
pub fn image_restoration(width: usize, height: usize, seed: u64) -> MrfApp {
    let n_labels = 64;
    let clean = smooth_scene(width, height, n_labels, seed);
    let mut rng = SplitMix64::new(seed ^ 0xD1CE);
    let mut observed: Vec<f64> = clean
        .iter()
        .map(|&l| (l as f64 + 4.0 * gaussian(&mut rng)).clamp(0.0, (n_labels - 1) as f64))
        .collect();
    // Black occlusion boxes: observation driven to 0 and flagged as
    // missing data so the restoration must inpaint them from the prior.
    let mut mask = vec![true; width * height];
    for _ in 0..3 {
        let bw = width / 8 + rng.uniform_index(width / 8 + 1);
        let bh = height / 8 + rng.uniform_index(height / 8 + 1);
        let bx = rng.uniform_index(width.saturating_sub(bw).max(1));
        let by = rng.uniform_index(height.saturating_sub(bh).max(1));
        for y in by..(by + bh).min(height) {
            for x in bx..(bx + bw).min(width) {
                observed[y * width + x] = 0.0;
                mask[y * width + x] = false;
            }
        }
    }
    let mut mrf = GridMrf::new(
        width,
        height,
        n_labels,
        observed,
        CostFn::TruncatedLinear { trunc: 16.0 },
        CostFn::TruncatedLinear { trunc: 8.0 },
        0.5,
        1.5,
    );
    mrf.set_data_mask(mask);
    MrfApp {
        name: "image-restoration",
        mrf,
        clean,
    }
}

/// **Stereo Matching** (16 labels): recover the disparity field of a scene
/// of rectangles floating at different depths, from noisy per-pixel
/// matching costs.
pub fn stereo_matching(width: usize, height: usize, seed: u64) -> MrfApp {
    let n_labels = 16;
    let mut rng = SplitMix64::new(seed);
    // Background plane disparity 2; rectangles at increasing disparities.
    let mut clean = vec![2usize; width * height];
    for d in [5usize, 9, 13] {
        let rw = width / 3 + rng.uniform_index(width / 4 + 1);
        let rh = height / 3 + rng.uniform_index(height / 4 + 1);
        let rx = rng.uniform_index(width.saturating_sub(rw).max(1));
        let ry = rng.uniform_index(height.saturating_sub(rh).max(1));
        for y in ry..(ry + rh).min(height) {
            for x in rx..(rx + rw).min(width) {
                clean[y * width + x] = d;
            }
        }
    }
    let observed: Vec<f64> = clean
        .iter()
        .map(|&l| (l as f64 + 1.2 * gaussian(&mut rng)).clamp(0.0, (n_labels - 1) as f64))
        .collect();
    let mrf = GridMrf::new(
        width,
        height,
        n_labels,
        observed,
        CostFn::TruncatedLinear { trunc: 6.0 },
        CostFn::TruncatedLinear { trunc: 3.0 },
        1.0,
        1.2,
    );
    MrfApp {
        name: "stereo-matching",
        mrf,
        clean,
    }
}

/// **Image Segmentation** (2 labels): separate a foreground blob from the
/// background given noisy intensities.
pub fn image_segmentation(width: usize, height: usize, seed: u64) -> MrfApp {
    let mut rng = SplitMix64::new(seed);
    let cx = width as f64 * (0.35 + 0.3 * rng.next_f64());
    let cy = height as f64 * (0.35 + 0.3 * rng.next_f64());
    let r = 0.25 * width.min(height) as f64;
    let clean: Vec<usize> = (0..width * height)
        .map(|i| {
            let (x, y) = ((i % width) as f64, (i / width) as f64);
            let wobble = 1.0 + 0.2 * ((x * 0.3).sin() + (y * 0.27).cos());
            usize::from((x - cx).powi(2) + (y - cy).powi(2) < (r * wobble).powi(2))
        })
        .collect();
    let observed: Vec<f64> = clean
        .iter()
        .map(|&l| (l as f64 + 0.45 * gaussian(&mut rng)).clamp(0.0, 1.0))
        .collect();
    let mrf = GridMrf::new(
        width,
        height,
        2,
        observed,
        CostFn::TruncatedQuadratic { trunc: 1.0 },
        CostFn::Potts { penalty: 1.0 },
        2.0,
        0.9,
    );
    MrfApp {
        name: "image-segmentation",
        mrf,
        clean,
    }
}

/// **Sound Source Separation** (2 labels): label each time–frequency bin of
/// a mixed spectrogram with its dominant source (a binary mask), as in the
/// paper's audio workload.
///
/// The synthetic mixture: two harmonic sources with distinct fundamentals
/// whose per-bin energies decide the clean mask; the observation is the
/// noisy log-energy *difference* between the sources.
pub fn sound_source_separation(frames: usize, bins: usize, seed: u64) -> MrfApp {
    let mut rng = SplitMix64::new(seed);
    let f0_a = 4.0 + rng.next_f64() * 2.0;
    let f0_b = 7.0 + rng.next_f64() * 2.0;
    let energy = |f0: f64, t: usize, b: usize| -> f64 {
        // Harmonic stacks with a slow amplitude modulation over time.
        let mut e = 1e-3;
        for h in 1..=4 {
            let centre = f0 * h as f64;
            let d = (b as f64 - centre).abs();
            e += (1.0 / h as f64) * (-d * d / 2.0).exp();
        }
        e * (1.0 + 0.5 * (t as f64 * 0.15).sin())
    };
    let mut clean = Vec::with_capacity(frames * bins);
    let mut observed = Vec::with_capacity(frames * bins);
    for t in 0..frames {
        for b in 0..bins {
            let ea = energy(f0_a, t, b);
            let eb = energy(f0_b, t, b);
            clean.push(usize::from(eb > ea));
            let margin = ((eb / ea).ln() / 4.0).clamp(-0.5, 0.5);
            observed.push((0.5 + margin + 0.35 * gaussian(&mut rng)).clamp(0.0, 1.0));
        }
    }
    let mrf = GridMrf::new(
        bins,
        frames,
        2,
        observed,
        CostFn::TruncatedQuadratic { trunc: 1.0 },
        CostFn::Potts { penalty: 1.0 },
        2.0,
        0.8,
    );
    MrfApp {
        name: "sound-source-separation",
        mrf,
        clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GibbsModel;

    #[test]
    fn restoration_has_64_labels_and_matching_sizes() {
        let app = image_restoration(24, 16, 1);
        assert_eq!(app.mrf.num_labels(0), 64);
        assert_eq!(app.clean.len(), 24 * 16);
        assert_eq!(app.mrf.num_variables(), 24 * 16);
    }

    #[test]
    fn restoration_observations_are_corrupted() {
        let app = image_restoration(24, 24, 2);
        let mismatches = app
            .clean
            .iter()
            .zip(app.mrf.observed())
            .filter(|(&c, &o)| (c as f64 - o).abs() > 0.5)
            .count();
        assert!(mismatches > 20, "noise + boxes must corrupt many pixels");
    }

    #[test]
    fn stereo_has_16_labels_with_planes() {
        let app = stereo_matching(32, 24, 3);
        assert_eq!(app.mrf.num_labels(0), 16);
        // background plane must remain the most common disparity
        let bg = app.clean.iter().filter(|&&l| l == 2).count();
        assert!(bg > app.clean.len() / 5, "background plane too small: {bg}");
        // at least one elevated rectangle
        assert!(app.clean.iter().any(|&l| l > 2));
    }

    #[test]
    fn segmentation_is_binary_with_both_classes() {
        let app = image_segmentation(24, 24, 4);
        assert_eq!(app.mrf.num_labels(0), 2);
        let fg = app.clean.iter().filter(|&&l| l == 1).count();
        assert!(fg > 10 && fg < app.clean.len() - 10, "fg size {fg}");
    }

    #[test]
    fn sound_mask_is_binary_with_structure() {
        let app = sound_source_separation(20, 32, 5);
        assert_eq!(app.mrf.num_labels(0), 2);
        let src_b = app.clean.iter().filter(|&&l| l == 1).count();
        assert!(src_b > 0 && src_b < app.clean.len());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = stereo_matching(16, 16, 42);
        let b = stereo_matching(16, 16, 42);
        assert_eq!(a, b);
        let c = stereo_matching(16, 16, 43);
        assert_ne!(a.clean, c.clean);
    }

    #[test]
    fn clean_field_is_smoother_than_noise() {
        // Total label variation along rows: the clean field must be far
        // smoother than the initial (observation-derived) labels.
        let app = image_restoration(32, 32, 7);
        let variation = |field: &[usize]| -> f64 {
            field
                .chunks(32)
                .flat_map(|row| row.windows(2))
                .map(|w| (w[0] as f64 - w[1] as f64).abs())
                .sum()
        };
        let init = app.mrf.labels();
        assert!(variation(&app.clean) * 2.0 < variation(&init));
    }
}
