//! Grid Markov random fields (paper §II-B).
//!
//! A [`GridMrf`] is a 4-connected grid of discrete variables. The posterior
//! of a node is `exp(-β · TC)` where the total cost `TC` is a data cost
//! (agreement with the observation) plus smooth costs against the four
//! neighbours (Eq. 3–4). The Gibbs scores are therefore produced directly in
//! the log domain.

mod apps;

pub use apps::{
    image_restoration, image_segmentation, sound_source_separation, stereo_matching, MrfApp,
};

use crate::{GibbsModel, LabelScore};

/// A pairwise/unary cost function family used by the MRF energy (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostFn {
    /// `min(|a - b|, trunc)` — the classic truncated-linear cost.
    TruncatedLinear {
        /// Saturation point of the cost.
        trunc: f64,
    },
    /// `min((a - b)², trunc)` — truncated quadratic.
    TruncatedQuadratic {
        /// Saturation point of the cost.
        trunc: f64,
    },
    /// `0` if equal, `penalty` otherwise — the Potts model.
    Potts {
        /// Disagreement penalty.
        penalty: f64,
    },
}

impl CostFn {
    /// Evaluate the cost between two label values.
    pub fn cost(&self, a: f64, b: f64) -> f64 {
        match *self {
            CostFn::TruncatedLinear { trunc } => (a - b).abs().min(trunc),
            CostFn::TruncatedQuadratic { trunc } => ((a - b) * (a - b)).min(trunc),
            CostFn::Potts { penalty } => {
                if a == b {
                    0.0
                } else {
                    penalty
                }
            }
        }
    }
}

/// Grid neighbourhood system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Connectivity {
    /// 4-connectivity (the paper's MRF definition: "every node is
    /// correlated to four neighbors surrounding it").
    #[default]
    Four,
    /// 8-connectivity (adds the diagonals), common in the stereo/
    /// segmentation literature for smoother boundaries.
    Eight,
}

/// A grid MRF (4- or 8-connected).
#[derive(Debug, Clone, PartialEq)]
pub struct GridMrf {
    width: usize,
    height: usize,
    connectivity: Connectivity,
    n_labels: usize,
    /// Observed value per node (the `y_i` of Eq. 1), in label units.
    observed: Vec<f64>,
    /// Per-node observation validity: `false` marks missing data (e.g. an
    /// occluded pixel), which drops the node's data-cost term so the label
    /// is inferred purely from the smoothness prior (inpainting).
    data_mask: Vec<bool>,
    /// Current label per node.
    labels: Vec<usize>,
    data_cost: CostFn,
    smooth_cost: CostFn,
    beta: f64,
    /// Weight of the smoothness term relative to the data term.
    lambda: f64,
}

impl GridMrf {
    /// Build a grid MRF.
    ///
    /// * `observed` — one observation per node in row-major order, already
    ///   scaled to label units.
    /// * `beta` — the inverse temperature of Eq. 4.
    /// * `lambda` — smoothness weight multiplying the pairwise costs.
    ///
    /// Initial labels are the observations clamped onto `[0, n_labels)`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero, `observed` has the wrong length,
    /// `n_labels < 2`, or `beta <= 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        width: usize,
        height: usize,
        n_labels: usize,
        observed: Vec<f64>,
        data_cost: CostFn,
        smooth_cost: CostFn,
        beta: f64,
        lambda: f64,
    ) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert_eq!(
            observed.len(),
            width * height,
            "observation field size mismatch"
        );
        assert!(n_labels >= 2, "need at least two labels");
        assert!(beta > 0.0, "beta must be positive");
        let labels = observed
            .iter()
            .map(|&y| (y.round().max(0.0) as usize).min(n_labels - 1))
            .collect();
        let data_mask = vec![true; width * height];
        Self {
            width,
            height,
            connectivity: Connectivity::Four,
            n_labels,
            observed,
            data_mask,
            labels,
            data_cost,
            smooth_cost,
            beta,
            lambda,
        }
    }

    /// Switch the neighbourhood system (builder-style). 8-connectivity adds
    /// the four diagonal neighbours to every smooth-cost sum.
    pub fn with_connectivity(mut self, connectivity: Connectivity) -> Self {
        self.connectivity = connectivity;
        self
    }

    /// The neighbourhood system in use.
    pub fn connectivity(&self) -> Connectivity {
        self.connectivity
    }

    /// Mark which nodes have valid observations; `false` entries lose their
    /// data-cost term entirely (missing data / inpainting).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has the wrong length.
    pub fn set_data_mask(&mut self, mask: Vec<bool>) {
        assert_eq!(mask.len(), self.data_mask.len(), "mask size mismatch");
        self.data_mask = mask;
    }

    /// The observation-validity mask.
    pub fn data_mask(&self) -> &[bool] {
        &self.data_mask
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Inverse temperature β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Set the inverse temperature (used by annealing schedules for MAP
    /// inference).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not strictly positive.
    pub fn set_beta(&mut self, beta: f64) {
        assert!(beta > 0.0, "beta must be positive");
        self.beta = beta;
    }

    /// The observation field.
    pub fn observed(&self) -> &[f64] {
        &self.observed
    }

    /// Overwrite the current label field (e.g. to randomize the initial
    /// state).
    ///
    /// # Panics
    ///
    /// Panics if `labels` has the wrong length or contains an out-of-range
    /// label.
    pub fn set_labels(&mut self, labels: Vec<usize>) {
        assert_eq!(labels.len(), self.labels.len(), "label field size mismatch");
        assert!(
            labels.iter().all(|&l| l < self.n_labels),
            "label out of range"
        );
        self.labels = labels;
    }

    /// Neighbour indices of node `i` under the configured connectivity.
    pub fn neighbours(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (x, y) = (i % self.width, i / self.width);
        let w = self.width;
        let h = self.height;
        let diag = self.connectivity == Connectivity::Eight;
        [
            (x > 0).then(|| i - 1),
            (x + 1 < w).then(|| i + 1),
            (y > 0).then(|| i - w),
            (y + 1 < h).then(|| i + w),
            (diag && x > 0 && y > 0).then(|| i - w - 1),
            (diag && x + 1 < w && y > 0).then(|| i - w + 1),
            (diag && x > 0 && y + 1 < h).then(|| i + w - 1),
            (diag && x + 1 < w && y + 1 < h).then(|| i + w + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// Total cost `TC_i(l)` of node `i` taking label `l` (Eq. 3).
    pub fn total_cost(&self, i: usize, l: usize) -> f64 {
        self.total_cost_at(i, l, |j| self.labels[j])
    }

    /// Total cost with neighbour labels read through `read` instead of the
    /// model's own label field — the hook the Hogwild engine uses to read
    /// (possibly stale) shared atomic labels.
    pub fn total_cost_at(&self, i: usize, l: usize, read: impl Fn(usize) -> usize) -> f64 {
        let dc = if self.data_mask[i] {
            self.data_cost.cost(l as f64, self.observed[i])
        } else {
            0.0
        };
        let sc: f64 = self
            .neighbours(i)
            .map(|j| self.smooth_cost.cost(l as f64, read(j) as f64))
            .sum();
        dc + self.lambda * sc
    }

    /// Total energy of the current configuration (for convergence
    /// tracking). Pairwise terms are counted once per edge.
    pub fn energy(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.labels.len() {
            if self.data_mask[i] {
                e += self.data_cost.cost(self.labels[i] as f64, self.observed[i]);
            }
            let (x, y) = (i % self.width, i / self.width);
            if x + 1 < self.width {
                e += self.lambda
                    * self
                        .smooth_cost
                        .cost(self.labels[i] as f64, self.labels[i + 1] as f64);
            }
            if y + 1 < self.height {
                e += self.lambda
                    * self
                        .smooth_cost
                        .cost(self.labels[i] as f64, self.labels[i + self.width] as f64);
            }
            if self.connectivity == Connectivity::Eight && y + 1 < self.height {
                // Count each diagonal edge once via the down-left and
                // down-right directions.
                if x > 0 {
                    e += self.lambda
                        * self.smooth_cost.cost(
                            self.labels[i] as f64,
                            self.labels[i + self.width - 1] as f64,
                        );
                }
                if x + 1 < self.width {
                    e += self.lambda
                        * self.smooth_cost.cost(
                            self.labels[i] as f64,
                            self.labels[i + self.width + 1] as f64,
                        );
                }
            }
        }
        e
    }
}

impl crate::coloring::ChromaticModel for GridMrf {
    /// 4-connectivity: the classic red–black checkerboard (`(x + y) % 2`).
    /// 8-connectivity: the 2×2 block pattern (`x % 2 + 2·(y % 2)`), since
    /// every horizontal, vertical or diagonal step flips at least one
    /// parity bit.
    fn color_classes(&self) -> Vec<Vec<usize>> {
        let n_classes = match self.connectivity {
            Connectivity::Four => 2,
            Connectivity::Eight => 4,
        };
        let mut classes = vec![Vec::new(); n_classes];
        for i in 0..self.labels.len() {
            let (x, y) = (i % self.width, i / self.width);
            let c = match self.connectivity {
                Connectivity::Four => (x + y) % 2,
                Connectivity::Eight => x % 2 + 2 * (y % 2),
            };
            classes[c].push(i);
        }
        classes
    }

    /// Grid adjacency: the 4- or 8-connected neighbourhood of every pixel.
    fn dependency_graph(&self) -> Vec<Vec<usize>> {
        (0..self.labels.len())
            .map(|i| self.neighbours(i).collect())
            .collect()
    }
}

impl GibbsModel for GridMrf {
    fn num_variables(&self) -> usize {
        self.labels.len()
    }

    fn num_labels(&self, _var: usize) -> usize {
        self.n_labels
    }

    fn scores(&self, var: usize, out: &mut Vec<LabelScore>) {
        out.clear();
        for l in 0..self.n_labels {
            out.push(LabelScore::LogDomain(-self.beta * self.total_cost(var, l)));
        }
    }

    fn update(&mut self, var: usize, label: usize) {
        assert!(label < self.n_labels, "label {label} out of range");
        self.labels[var] = label;
    }

    fn label(&self, var: usize) -> usize {
        self.labels[var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mrf() -> GridMrf {
        GridMrf::new(
            3,
            3,
            4,
            vec![0.0, 1.0, 2.0, 1.0, 2.0, 3.0, 2.0, 3.0, 3.0],
            CostFn::TruncatedLinear { trunc: 2.0 },
            CostFn::TruncatedLinear { trunc: 2.0 },
            1.0,
            1.0,
        )
    }

    #[test]
    fn cost_functions() {
        assert_eq!(CostFn::TruncatedLinear { trunc: 2.0 }.cost(5.0, 1.0), 2.0);
        assert_eq!(CostFn::TruncatedLinear { trunc: 2.0 }.cost(1.5, 1.0), 0.5);
        assert_eq!(
            CostFn::TruncatedQuadratic { trunc: 5.0 }.cost(3.0, 1.0),
            4.0
        );
        assert_eq!(
            CostFn::TruncatedQuadratic { trunc: 3.0 }.cost(3.0, 0.0),
            3.0
        );
        assert_eq!(CostFn::Potts { penalty: 1.5 }.cost(2.0, 2.0), 0.0);
        assert_eq!(CostFn::Potts { penalty: 1.5 }.cost(2.0, 1.0), 1.5);
    }

    #[test]
    fn neighbour_topology() {
        let m = small_mrf();
        // corner
        let n0: Vec<usize> = m.neighbours(0).collect();
        assert_eq!(n0, vec![1, 3]);
        // center
        let mut n4: Vec<usize> = m.neighbours(4).collect();
        n4.sort_unstable();
        assert_eq!(n4, vec![1, 3, 5, 7]);
        // edge
        let mut n5: Vec<usize> = m.neighbours(5).collect();
        n5.sort_unstable();
        assert_eq!(n5, vec![2, 4, 8]);
    }

    #[test]
    fn initial_labels_follow_observations() {
        let m = small_mrf();
        assert_eq!(m.label(0), 0);
        assert_eq!(m.label(8), 3);
    }

    #[test]
    fn scores_are_negative_beta_times_cost() {
        let m = small_mrf();
        let mut out = Vec::new();
        m.scores(4, &mut out);
        assert_eq!(out.len(), 4);
        for (l, s) in out.iter().enumerate() {
            match s {
                LabelScore::LogDomain(v) => {
                    assert!((v + m.beta() * m.total_cost(4, l)).abs() < 1e-12)
                }
                _ => panic!("MRF must produce log-domain scores"),
            }
        }
    }

    #[test]
    fn matching_label_minimizes_cost_on_uniform_field() {
        let m = GridMrf::new(
            2,
            2,
            4,
            vec![2.0; 4],
            CostFn::TruncatedLinear { trunc: 3.0 },
            CostFn::TruncatedLinear { trunc: 3.0 },
            1.0,
            1.0,
        );
        let costs: Vec<f64> = (0..4).map(|l| m.total_cost(0, l)).collect();
        let argmin = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmin, 2);
    }

    #[test]
    fn energy_decreases_when_fixing_an_outlier() {
        let mut m = GridMrf::new(
            3,
            3,
            4,
            vec![1.0; 9],
            CostFn::TruncatedLinear { trunc: 3.0 },
            CostFn::TruncatedLinear { trunc: 3.0 },
            1.0,
            1.0,
        );
        let e_clean = m.energy();
        m.update(4, 3); // plant an outlier at the center
        let e_dirty = m.energy();
        assert!(e_dirty > e_clean);
        m.update(4, 1);
        assert_eq!(m.energy(), e_clean);
    }

    #[test]
    fn energy_counts_each_edge_once() {
        // 1x2 grid with distinct labels: exactly one pairwise term.
        let mut m = GridMrf::new(
            2,
            1,
            2,
            vec![0.0, 0.0],
            CostFn::Potts { penalty: 0.0 },
            CostFn::Potts { penalty: 1.0 },
            1.0,
            1.0,
        );
        m.set_labels(vec![0, 1]);
        assert_eq!(m.energy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn set_labels_validates_range() {
        small_mrf().set_labels(vec![9; 9]);
    }

    #[test]
    fn eight_connectivity_adds_diagonals() {
        let m = small_mrf().with_connectivity(Connectivity::Eight);
        let mut n4: Vec<usize> = m.neighbours(4).collect();
        n4.sort_unstable();
        assert_eq!(n4, vec![0, 1, 2, 3, 5, 6, 7, 8], "center touches all 8");
        let mut n0: Vec<usize> = m.neighbours(0).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3, 4], "corner gets one diagonal");
    }

    #[test]
    fn eight_connectivity_energy_counts_diagonal_edges_once() {
        // 2x2 grid, Potts penalty 1, labels all distinct: 4-conn has 4
        // edges; 8-conn adds the two diagonals.
        let build = |conn| {
            let mut m = GridMrf::new(
                2,
                2,
                4,
                vec![0.0; 4],
                CostFn::Potts { penalty: 0.0 },
                CostFn::Potts { penalty: 1.0 },
                1.0,
                1.0,
            )
            .with_connectivity(conn);
            m.set_labels(vec![0, 1, 2, 3]);
            m
        };
        assert_eq!(build(Connectivity::Four).energy(), 4.0);
        assert_eq!(build(Connectivity::Eight).energy(), 6.0);
    }

    #[test]
    fn eight_connectivity_coloring_is_valid() {
        use crate::coloring::{verify_coloring, ChromaticModel};
        let m = GridMrf::new(
            5,
            4,
            2,
            vec![0.0; 20],
            CostFn::Potts { penalty: 1.0 },
            CostFn::Potts { penalty: 1.0 },
            1.0,
            1.0,
        )
        .with_connectivity(Connectivity::Eight);
        let classes = m.color_classes();
        assert_eq!(classes.len(), 4);
        let adjacency: Vec<Vec<usize>> = (0..20).map(|i| m.neighbours(i).collect()).collect();
        assert!(verify_coloring(&adjacency, &classes));
    }

    #[test]
    fn masked_nodes_drop_data_cost() {
        let mut m = small_mrf();
        let dc_before = m.total_cost(4, 0);
        let mut mask = vec![true; 9];
        mask[4] = false;
        m.set_data_mask(mask);
        let dc_after = m.total_cost(4, 0);
        // node 4 observes 2.0, so label 0 had data cost 2.0
        assert!((dc_before - dc_after - 2.0).abs() < 1e-12);
        // energy also excludes the masked data term once the label
        // disagrees with the (masked) observation
        m.update(4, 0);
        let e = m.energy();
        let mut unmasked = small_mrf();
        unmasked.set_labels(m.labels());
        assert!(unmasked.energy() > e);
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn wrong_mask_length_panics() {
        small_mrf().set_data_mask(vec![true; 3]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_observation_length_panics() {
        let _ = GridMrf::new(
            2,
            2,
            2,
            vec![0.0; 3],
            CostFn::Potts { penalty: 1.0 },
            CostFn::Potts { penalty: 1.0 },
            1.0,
            1.0,
        );
    }
}
