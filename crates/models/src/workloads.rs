//! The Table I workload registry.
//!
//! Each entry records the paper's workload metadata (#variables, #labels,
//! Table II runtime breakdown) and knows how to build a scaled synthetic
//! instance of itself. Scaled sizes keep the test suite fast; the benches
//! construct larger instances directly from the generators when sweeping.

use crate::bn::{asia, earthquake, survey, BayesNet};
use crate::lda::{synthetic_corpus, CorpusSpec, Lda};
use crate::mrf::{
    image_restoration, image_segmentation, sound_source_separation, stereo_matching, MrfApp,
};

/// Model family of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Markov random field.
    Mrf,
    /// Bayesian network.
    Bn,
    /// Latent Dirichlet allocation.
    Lda,
}

/// One row of Table I plus its Table II runtime breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as printed in the paper.
    pub name: &'static str,
    /// Model family.
    pub kind: ModelKind,
    /// #Variables reported in Table I.
    pub paper_variables: u64,
    /// #Labels reported in Table I.
    pub paper_labels: u32,
    /// Table II CPU runtime breakdown `(PG%, SD%, PU%)`.
    pub paper_breakdown: (f64, f64, f64),
}

/// A built, scaled instance of a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum BuiltWorkload {
    /// An MRF application (with its clean reference field).
    Mrf(MrfApp),
    /// A Bayesian network (full size — they are tiny).
    Bn(BayesNet),
    /// An LDA model over a synthetic corpus.
    Lda(Lda),
}

impl WorkloadSpec {
    /// Build the default (CI-scale) instance seeded by `seed`.
    pub fn build(&self, seed: u64) -> BuiltWorkload {
        self.build_scaled(1.0, seed)
    }

    /// Build an instance scaled by `scale` relative to the CI default:
    /// grid workloads grow in area, corpora in document count. `scale` up
    /// to ~100 walks the MRFs toward their Table I sizes; the Bayesian
    /// networks are already full size and ignore `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1000]`.
    pub fn build_scaled(&self, scale: f64, seed: u64) -> BuiltWorkload {
        assert!(scale > 0.0 && scale <= 1000.0, "scale must be in (0, 1000]");
        let dim = |base: usize| ((base as f64 * scale.sqrt()).round() as usize).max(4);
        let docs = |base: usize| ((base as f64 * scale).round() as usize).max(2);
        match self.name {
            "MRF-Image Restoration" => {
                BuiltWorkload::Mrf(image_restoration(dim(40), dim(26), seed))
            }
            "MRF-Stereo Matching" => BuiltWorkload::Mrf(stereo_matching(dim(48), dim(32), seed)),
            "MRF-Image Segmentation" => {
                BuiltWorkload::Mrf(image_segmentation(dim(50), dim(30), seed))
            }
            "MRF-Sound Source Separation" => {
                BuiltWorkload::Mrf(sound_source_separation(dim(40), dim(32), seed))
            }
            "BN-ASIA" => BuiltWorkload::Bn(asia()),
            "BN-EARTHQUAKE" => BuiltWorkload::Bn(earthquake()),
            "BN-SURVEY" => BuiltWorkload::Bn(survey()),
            "LDA-NIPS" => BuiltWorkload::Lda(scaled_lda(docs(60), 256, 16, 80, 3, seed)),
            "LDA-Enron" => BuiltWorkload::Lda(scaled_lda(docs(120), 192, 16, 40, 2, seed)),
            "LDA-RNA" => BuiltWorkload::Lda(scaled_lda(docs(40), 64, 8, 100, 2, seed)),
            other => unreachable!("unknown workload {other}"),
        }
    }
}

fn scaled_lda(
    n_docs: usize,
    n_vocab: usize,
    n_topics: usize,
    doc_len: usize,
    topics_per_doc: usize,
    seed: u64,
) -> Lda {
    let corpus = synthetic_corpus(&CorpusSpec {
        n_docs,
        n_vocab,
        n_topics,
        doc_len,
        topics_per_doc,
        seed,
    });
    let mut lda = Lda::new(&corpus, n_topics, 50.0 / n_topics as f64, 0.01);
    lda.randomize_topics(seed ^ 0x1DA);
    lda
}

/// All ten workloads of Table I, in the paper's order.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "MRF-Image Restoration",
            kind: ModelKind::Mrf,
            paper_variables: 6_656,
            paper_labels: 64,
            paper_breakdown: (88.00, 9.20, 2.81),
        },
        WorkloadSpec {
            name: "MRF-Stereo Matching",
            kind: ModelKind::Mrf,
            paper_variables: 110_592,
            paper_labels: 16,
            paper_breakdown: (76.49, 14.78, 8.73),
        },
        WorkloadSpec {
            name: "MRF-Image Segmentation",
            kind: ModelKind::Mrf,
            paper_variables: 150_000,
            paper_labels: 2,
            paper_breakdown: (45.71, 31.69, 22.60),
        },
        WorkloadSpec {
            name: "MRF-Sound Source Separation",
            kind: ModelKind::Mrf,
            paper_variables: 64_125,
            paper_labels: 2,
            paper_breakdown: (46.14, 31.63, 22.23),
        },
        WorkloadSpec {
            name: "BN-ASIA",
            kind: ModelKind::Bn,
            paper_variables: 8,
            paper_labels: 2,
            paper_breakdown: (46.00, 52.37, 1.63),
        },
        WorkloadSpec {
            name: "BN-EARTHQUAKE",
            kind: ModelKind::Bn,
            paper_variables: 5,
            paper_labels: 2,
            paper_breakdown: (44.97, 53.36, 1.68),
        },
        WorkloadSpec {
            name: "BN-SURVEY",
            kind: ModelKind::Bn,
            paper_variables: 6,
            paper_labels: 3,
            paper_breakdown: (45.96, 52.45, 1.59),
        },
        WorkloadSpec {
            name: "LDA-NIPS",
            kind: ModelKind::Lda,
            paper_variables: 1_932_365,
            paper_labels: 128,
            paper_breakdown: (40.26, 53.23, 6.50),
        },
        WorkloadSpec {
            name: "LDA-Enron",
            kind: ModelKind::Lda,
            paper_variables: 6_412_172,
            paper_labels: 128,
            paper_breakdown: (42.84, 56.34, 0.83),
        },
        WorkloadSpec {
            name: "LDA-RNA",
            kind: ModelKind::Lda,
            paper_variables: 540_393,
            paper_labels: 128,
            paper_breakdown: (39.14, 53.20, 7.66),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GibbsModel;

    #[test]
    fn ten_workloads_three_families() {
        let all = all_workloads();
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|w| w.kind == ModelKind::Mrf).count(), 4);
        assert_eq!(all.iter().filter(|w| w.kind == ModelKind::Bn).count(), 3);
        assert_eq!(all.iter().filter(|w| w.kind == ModelKind::Lda).count(), 3);
    }

    #[test]
    fn breakdowns_sum_to_about_100() {
        for w in all_workloads() {
            let (pg, sd, pu) = w.paper_breakdown;
            let sum = pg + sd + pu;
            assert!((99.0..101.0).contains(&sum), "{}: {sum}", w.name);
        }
    }

    #[test]
    fn every_workload_builds() {
        for w in all_workloads() {
            let built = w.build(1);
            let vars = match &built {
                BuiltWorkload::Mrf(app) => app.mrf.num_variables(),
                BuiltWorkload::Bn(net) => net.num_variables(),
                BuiltWorkload::Lda(lda) => lda.num_variables(),
            };
            assert!(vars > 0, "{} built empty", w.name);
        }
    }

    #[test]
    fn scaling_grows_mrf_and_lda_but_not_bn() {
        let specs = all_workloads();
        let stereo = &specs[1];
        let small = match stereo.build_scaled(1.0, 0) {
            BuiltWorkload::Mrf(app) => app.mrf.num_variables(),
            _ => panic!(),
        };
        let big = match stereo.build_scaled(4.0, 0) {
            BuiltWorkload::Mrf(app) => app.mrf.num_variables(),
            _ => panic!(),
        };
        assert!(
            (3..=5).contains(&(big / small)),
            "area should ~4x: {small} -> {big}"
        );

        let nips = &specs[7];
        let t_small = match nips.build_scaled(1.0, 0) {
            BuiltWorkload::Lda(l) => l.num_variables(),
            _ => panic!(),
        };
        let t_big = match nips.build_scaled(3.0, 0) {
            BuiltWorkload::Lda(l) => l.num_variables(),
            _ => panic!(),
        };
        assert_eq!(t_big, 3 * t_small);

        let asia_spec = &specs[4];
        if let BuiltWorkload::Bn(net) = asia_spec.build_scaled(10.0, 0) {
            assert_eq!(net.num_variables(), 8, "BNs ignore scale");
        } else {
            panic!();
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_panics() {
        let _ = all_workloads()[0].build_scaled(0.0, 0);
    }

    #[test]
    fn bn_workloads_are_full_size() {
        for w in all_workloads().iter().filter(|w| w.kind == ModelKind::Bn) {
            if let BuiltWorkload::Bn(net) = w.build(0) {
                assert_eq!(net.num_variables() as u64, w.paper_variables, "{}", w.name);
            } else {
                panic!("expected BN");
            }
        }
    }

    #[test]
    fn mrf_label_counts_match_table_1() {
        for w in all_workloads().iter().filter(|w| w.kind == ModelKind::Mrf) {
            if let BuiltWorkload::Mrf(app) = w.build(0) {
                assert_eq!(app.mrf.num_labels(0) as u32, w.paper_labels, "{}", w.name);
            } else {
                panic!("expected MRF");
            }
        }
    }
}
