//! Property-based tests for the model substrates (deterministic generator
//! harness from `coopmc-testkit`).

use coopmc_models::coloring::{greedy_coloring, verify_coloring, ChromaticModel};
use coopmc_models::lda::{synthetic_corpus, CorpusSpec, Lda};
use coopmc_models::mrf::{CostFn, GridMrf};
use coopmc_models::{GibbsModel, LabelScore};
use coopmc_testkit::{check, Gen};

fn arb_grid(g: &mut Gen) -> GridMrf {
    let w = g.usize_in(2, 12);
    let h = g.usize_in(2, 12);
    let l = g.usize_in(2, 8);
    let observed: Vec<f64> = (0..w * h).map(|_| g.index(l) as f64).collect();
    GridMrf::new(
        w,
        h,
        l,
        observed,
        CostFn::TruncatedLinear { trunc: 3.0 },
        CostFn::TruncatedLinear { trunc: 2.0 },
        1.0,
        1.0,
    )
}

#[test]
fn mrf_neighbours_symmetric() {
    check("mrf_neighbours_symmetric", 64, |g| {
        let mrf = arb_grid(g);
        let n = mrf.num_variables();
        for i in 0..n {
            for j in mrf.neighbours(i) {
                assert!(j < n);
                assert!(mrf.neighbours(j).any(|k| k == i), "asymmetric edge {i}-{j}");
            }
        }
    });
}

#[test]
fn mrf_coloring_is_valid() {
    check("mrf_coloring_is_valid", 64, |g| {
        let mrf = arb_grid(g);
        let classes = mrf.color_classes();
        let adjacency: Vec<Vec<usize>> = (0..mrf.num_variables())
            .map(|i| mrf.neighbours(i).collect())
            .collect();
        assert!(verify_coloring(&adjacency, &classes));
        assert!(classes.len() <= 2);
    });
}

#[test]
fn mrf_energy_consistent_under_updates() {
    check("mrf_energy_consistent_under_updates", 64, |g| {
        let mut mrf = arb_grid(g);
        for _ in 0..g.usize_in(1, 20) {
            let var = g.index(mrf.num_variables());
            let label = g.index(mrf.num_labels(0));
            let before = mrf.energy();
            let old = mrf.label(var);
            mrf.update(var, label);
            let after = mrf.energy();
            // Reverting must restore the exact energy.
            mrf.update(var, old);
            assert!((mrf.energy() - before).abs() < 1e-9);
            mrf.update(var, label);
            assert!((mrf.energy() - after).abs() < 1e-9);
        }
    });
}

#[test]
fn mrf_scores_are_valid_log_domain() {
    check("mrf_scores_are_valid_log_domain", 128, |g| {
        let mrf = arb_grid(g);
        let var = g.index(mrf.num_variables());
        let mut out = Vec::new();
        mrf.scores(var, &mut out);
        assert_eq!(out.len(), mrf.num_labels(var));
        for s in &out {
            match s {
                LabelScore::LogDomain(v) => {
                    assert!(v.is_finite());
                    assert!(*v <= 0.0, "MRF scores are -beta*cost <= 0");
                }
                _ => panic!("MRF must emit log-domain scores"),
            }
        }
    });
}

#[test]
fn greedy_coloring_is_proper() {
    check("greedy_coloring_is_proper", 128, |g| {
        let n = 20;
        let mut adjacency = vec![std::collections::BTreeSet::new(); n];
        for _ in 0..g.usize_in(0, 60) {
            let a = g.index(n);
            let b = g.index(n);
            if a != b {
                adjacency[a].insert(b);
                adjacency[b].insert(a);
            }
        }
        let adjacency: Vec<Vec<usize>> = adjacency
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        let classes = greedy_coloring(&adjacency).expect("indices in range");
        assert!(verify_coloring(&adjacency, &classes));
        let max_degree = adjacency.iter().map(|a| a.len()).max().unwrap_or(0);
        assert!(classes.len() <= max_degree + 1);
    });
}

#[test]
fn lda_counts_conserved() {
    check("lda_counts_conserved", 32, |g| {
        let seed = g.u64();
        let corpus = synthetic_corpus(&CorpusSpec {
            n_docs: 5,
            n_vocab: 20,
            n_topics: 3,
            doc_len: 10,
            topics_per_doc: 2,
            seed,
        });
        let mut lda = Lda::new(&corpus, 3, 0.5, 0.1);
        lda.randomize_topics(seed ^ 1);
        let n_tokens = corpus.tokens.len() as u32;
        for _ in 0..g.usize_in(1, 40) {
            let tok = g.index(lda.num_variables());
            let topic = g.index(lda.n_topics());
            lda.begin_resample(tok);
            lda.update(tok, topic);
            let total: u32 = (0..3).map(|k| lda.topic_total(k)).sum();
            assert_eq!(total, n_tokens);
            assert_eq!(lda.label(tok), topic);
        }
        // Per-topic VT column sums must equal topic totals.
        for k in 0..3 {
            let vt_sum: u32 = (0..20).map(|v| lda.vt(k, v)).sum();
            assert_eq!(vt_sum, lda.topic_total(k));
        }
    });
}

/// `scores_into` (the buffer-recycling hot-path API) produces exactly what
/// `scores` produces, for every model family, even when the output buffer
/// holds stale entries from a different variable or model.
#[test]
fn scores_into_matches_scores() {
    check("scores_into_matches_scores", 48, |g| {
        let mrf = arb_grid(g);
        let bn = coopmc_models::bn::asia();
        let corpus = synthetic_corpus(&CorpusSpec {
            n_docs: 4,
            n_vocab: 16,
            n_topics: 3,
            doc_len: 8,
            topics_per_doc: 2,
            seed: g.u64(),
        });
        let mut lda = Lda::new(&corpus, 3, 0.5, 0.1);
        lda.randomize_topics(g.u64());
        let models: Vec<&dyn GibbsModel> = vec![&mrf, &bn, &lda];
        // One reused (deliberately dirty) buffer across all models/vars.
        let mut recycled = Vec::new();
        for m in models {
            for _ in 0..6 {
                let var = g.index(m.num_variables());
                let mut fresh = Vec::new();
                m.scores(var, &mut fresh);
                m.scores_into(var, &mut recycled);
                assert_eq!(fresh, recycled);
            }
        }
    });
}

#[test]
fn lda_scores_are_positive_factors() {
    check("lda_scores_are_positive_factors", 64, |g| {
        let corpus = synthetic_corpus(&CorpusSpec {
            n_docs: 4,
            n_vocab: 16,
            n_topics: 4,
            doc_len: 8,
            topics_per_doc: 2,
            seed: g.u64(),
        });
        let mut lda = Lda::new(&corpus, 4, 0.5, 0.1);
        let tok = g.index(lda.num_variables());
        lda.begin_resample(tok);
        let mut out = Vec::new();
        lda.scores(tok, &mut out);
        lda.update(tok, 0);
        assert_eq!(out.len(), 4);
        for s in &out {
            let v = s.reference_value();
            assert!(v.is_finite() && v > 0.0, "score {v}");
        }
    });
}
