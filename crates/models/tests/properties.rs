//! Property-based tests for the model substrates.

use coopmc_models::coloring::{greedy_coloring, verify_coloring, ChromaticModel};
use coopmc_models::lda::{synthetic_corpus, CorpusSpec, Lda};
use coopmc_models::mrf::{CostFn, GridMrf};
use coopmc_models::{GibbsModel, LabelScore};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = GridMrf> {
    (2usize..12, 2usize..12, 2usize..8, any::<u64>()).prop_map(|(w, h, l, seed)| {
        let mut x = seed;
        let observed: Vec<f64> = (0..w * h)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) % l as u64) as f64
            })
            .collect();
        GridMrf::new(
            w,
            h,
            l,
            observed,
            CostFn::TruncatedLinear { trunc: 3.0 },
            CostFn::TruncatedLinear { trunc: 2.0 },
            1.0,
            1.0,
        )
    })
}

proptest! {
    /// Neighbourhood relation is symmetric and within bounds.
    #[test]
    fn mrf_neighbours_symmetric(mrf in arb_grid()) {
        let n = mrf.num_variables();
        for i in 0..n {
            for j in mrf.neighbours(i) {
                prop_assert!(j < n);
                prop_assert!(mrf.neighbours(j).any(|k| k == i), "asymmetric edge {i}-{j}");
            }
        }
    }

    /// The red-black coloring is a valid chromatic partition of the grid.
    #[test]
    fn mrf_coloring_is_valid(mrf in arb_grid()) {
        let classes = mrf.color_classes();
        let adjacency: Vec<Vec<usize>> =
            (0..mrf.num_variables()).map(|i| mrf.neighbours(i).collect()).collect();
        prop_assert!(verify_coloring(&adjacency, &classes));
        prop_assert!(classes.len() <= 2);
    }

    /// Energy equals the sum over variables of data costs plus each edge's
    /// smooth cost counted once: recomputing from scratch after random
    /// updates stays consistent with incremental expectations.
    #[test]
    fn mrf_energy_consistent_under_updates(
        mut mrf in arb_grid(),
        updates in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..20),
    ) {
        for (vi, li) in updates {
            let var = vi.index(mrf.num_variables());
            let label = li.index(mrf.num_labels(0));
            let before = mrf.energy();
            let old = mrf.label(var);
            mrf.update(var, label);
            let after = mrf.energy();
            // Reverting must restore the exact energy.
            mrf.update(var, old);
            prop_assert!((mrf.energy() - before).abs() < 1e-9);
            mrf.update(var, label);
            prop_assert!((mrf.energy() - after).abs() < 1e-9);
        }
    }

    /// MRF scores are finite, non-positive log-probabilities.
    #[test]
    fn mrf_scores_are_valid_log_domain(mrf in arb_grid(), vi in any::<prop::sample::Index>()) {
        let var = vi.index(mrf.num_variables());
        let mut out = Vec::new();
        mrf.scores(var, &mut out);
        prop_assert_eq!(out.len(), mrf.num_labels(var));
        for s in &out {
            match s {
                LabelScore::LogDomain(v) => {
                    prop_assert!(v.is_finite());
                    prop_assert!(*v <= 0.0, "MRF scores are -beta*cost <= 0");
                }
                _ => prop_assert!(false, "MRF must emit log-domain scores"),
            }
        }
    }

    /// Greedy coloring always yields a valid partition with at most
    /// max-degree + 1 colors.
    #[test]
    fn greedy_coloring_is_proper(
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let n = 20;
        let mut adjacency = vec![std::collections::BTreeSet::new(); n];
        for (a, b) in edges {
            if a != b {
                adjacency[a].insert(b);
                adjacency[b].insert(a);
            }
        }
        let adjacency: Vec<Vec<usize>> =
            adjacency.into_iter().map(|s| s.into_iter().collect()).collect();
        let classes = greedy_coloring(&adjacency);
        prop_assert!(verify_coloring(&adjacency, &classes));
        let max_degree = adjacency.iter().map(|a| a.len()).max().unwrap_or(0);
        prop_assert!(classes.len() <= max_degree + 1);
    }

    /// LDA count tables conserve token counts through arbitrary resample
    /// sequences.
    #[test]
    fn lda_counts_conserved(
        seed in any::<u64>(),
        moves in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..40),
    ) {
        let corpus = synthetic_corpus(&CorpusSpec {
            n_docs: 5,
            n_vocab: 20,
            n_topics: 3,
            doc_len: 10,
            topics_per_doc: 2,
            seed,
        });
        let mut lda = Lda::new(&corpus, 3, 0.5, 0.1);
        lda.randomize_topics(seed ^ 1);
        let n_tokens = corpus.tokens.len() as u32;
        for (ti, ki) in moves {
            let tok = ti.index(lda.num_variables());
            let topic = ki.index(lda.n_topics());
            lda.begin_resample(tok);
            lda.update(tok, topic);
            let total: u32 = (0..3).map(|k| lda.topic_total(k)).sum();
            prop_assert_eq!(total, n_tokens);
            prop_assert_eq!(lda.label(tok), topic);
        }
        // Per-topic VT column sums must equal topic totals.
        for k in 0..3 {
            let vt_sum: u32 = (0..20).map(|v| lda.vt(k, v)).sum();
            prop_assert_eq!(vt_sum, lda.topic_total(k));
        }
    }

    /// LDA scores are valid positive factor expressions whose reference
    /// values are finite.
    #[test]
    fn lda_scores_are_positive_factors(seed in any::<u64>(), ti in any::<prop::sample::Index>()) {
        let corpus = synthetic_corpus(&CorpusSpec {
            n_docs: 4,
            n_vocab: 16,
            n_topics: 4,
            doc_len: 8,
            topics_per_doc: 2,
            seed,
        });
        let mut lda = Lda::new(&corpus, 4, 0.5, 0.1);
        let tok = ti.index(lda.num_variables());
        lda.begin_resample(tok);
        let mut out = Vec::new();
        lda.scores(tok, &mut out);
        lda.update(tok, 0);
        prop_assert_eq!(out.len(), 4);
        for s in &out {
            let v = s.reference_value();
            prop_assert!(v.is_finite() && v > 0.0, "score {v}");
        }
    }
}
