//! Validate a CoopMC run journal (JSONL) against the `coopmc-journal/1`
//! sweep schema and the `coopmc-health/1` chain-health schema (lines of the
//! two kinds may interleave). CI runs this on the journal of a short traced
//! MRF chain.
//!
//! Usage: `coopmc-obs-check <journal.jsonl> [more.jsonl ...]`
//! Exits non-zero with a diagnostic on the first invalid file.

use std::process::ExitCode;

use coopmc_obs::journal::validate_journal;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: coopmc-obs-check <journal.jsonl> [more.jsonl ...]");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_journal(&text) {
            Ok(lines) => println!("{path}: OK ({lines} journal lines)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
