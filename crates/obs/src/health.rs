//! Streaming chain-health diagnostics: online ESS / R-hat / MCSE over a
//! fixed ring buffer, anomaly detectors, and an early-stop convergence
//! controller.
//!
//! The post-hoc diagnostics in `coopmc_models::diagnostics` rescan the full
//! statistic series; this module maintains the same quantities
//! *incrementally* so they can steer a running chain:
//!
//! - **Welford moments** — running mean/variance of the whole chain, O(1)
//!   per sweep, no storage beyond three scalars.
//! - **Windowed ESS** — effective sample size over the last `window`
//!   statistics via the autocorrelation sum with Geyer's initial-monotone
//!   truncation (initial-positive pair sums, additionally forced
//!   non-increasing). The ring buffer is fixed at construction, so the
//!   per-refresh cost is bounded by the window, never the chain length.
//! - **Split R-hat** — the potential scale reduction factor over the two
//!   halves of the window, both classic (on raw values, numerically
//!   identical to `gelman_rubin` on the same split) and **rank-normalized**
//!   (values replaced by normal scores of their in-window ranks, the
//!   Vehtari et al. 2021 robustification; clamped to ≥ 1).
//! - **MCSE** — Monte-Carlo standard error `sqrt(window variance / ESS)`.
//! - **Anomaly detectors** — stuck-chain/flatline (no label flips over a
//!   window of sweeps), flip-rate drift (fast EWMA diverging from slow
//!   EWMA), and uniform-fallback spikes — each emitting a typed
//!   [`HealthEvent`] at most once per excursion.
//!
//! All state is preallocated at construction ([`ChainHealth::new`]): the
//! ring, the rank/ESS scratch, the bounded event buffer and the metric
//! handles. A warm [`ChainHealth::observe_sweep`] therefore performs **zero
//! heap allocations** — proven by the counting-allocator test in
//! `coopmc-core` (`tests/alloc_free_health.rs`) — and never touches the
//! chain's RNG or labels, so health-on and health-off chains are
//! bit-identical (pinned by `tests/health.rs` at the workspace root).
//!
//! The [`ConvergenceController`] trait is the hook the engines consult
//! between sweeps (`run_controlled`): [`NoControl`] statically dispatches
//! into nothing, [`EarlyStop`] stops the chain once rank-normalized R-hat
//! falls to the threshold *and* windowed ESS reaches the budget — exactly
//! the progress/early-stop signal the planned `coopmc-serve` needs.

use crate::journal::render_health_line;
use crate::metrics::{self, Counter, Gauge};
use crate::trace::Recorder;

/// Diagnostics refresh and detector tuning for one [`ChainHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Ring-buffer capacity: diagnostics cover the last `window` statistic
    /// observations. Must be ≥ 8 (split R-hat needs 4 per half).
    pub window: usize,
    /// Recompute ESS/R-hat/MCSE every `refresh_stride` statistic
    /// observations. Per-sweep cost is O(window·log window / stride)
    /// amortized; 1 refreshes every sweep.
    pub refresh_stride: u64,
    /// Sweeps with zero label flips before a [`HealthEventKind::StuckChain`]
    /// event fires.
    pub flatline_window: u64,
    /// Absolute divergence between the fast and slow flip-rate EWMAs that
    /// triggers [`HealthEventKind::FlipRateDrift`].
    pub drift_tolerance: f64,
    /// Fraction of a sweep's updates hitting the uniform fallback that
    /// triggers [`HealthEventKind::FallbackSpike`].
    pub fallback_spike: f64,
    /// Capacity of the typed event buffer; further events are counted in
    /// [`ChainHealth::dropped_events`] instead of stored (no allocation).
    pub max_events: usize,
    /// Publish per-chain gauges/counters to the global metrics registry
    /// (handles are interned once at construction).
    pub publish_metrics: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            window: 256,
            refresh_stride: 8,
            flatline_window: 32,
            drift_tolerance: 0.25,
            fallback_spike: 0.05,
            max_events: 64,
            publish_metrics: true,
        }
    }
}

impl HealthConfig {
    /// The configuration journal export uses to reproduce the running
    /// per-line ESS/R-hat columns: refresh every line, detectors and
    /// metrics off, a window wide enough that short chains see the
    /// full-series estimates.
    pub fn for_export() -> Self {
        Self {
            window: 4096,
            refresh_stride: 1,
            publish_metrics: false,
            ..Self::default()
        }
    }
}

/// The anomaly classes the detectors can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEventKind {
    /// No label flip for [`HealthConfig::flatline_window`] consecutive
    /// sweeps: the chain is stuck (or fully frozen at a mode).
    StuckChain,
    /// The fast flip-rate EWMA diverged from the slow one by more than
    /// [`HealthConfig::drift_tolerance`]: acceptance behaviour changed
    /// mid-run.
    FlipRateDrift,
    /// One sweep's uniform-fallback draws exceeded
    /// [`HealthConfig::fallback_spike`] of its updates (the Fig. 2 flush
    /// regime spiking).
    FallbackSpike,
}

impl HealthEventKind {
    /// Stable snake_case name used in metrics labels and journal lines.
    pub fn name(self) -> &'static str {
        match self {
            Self::StuckChain => "stuck_chain",
            Self::FlipRateDrift => "flip_rate_drift",
            Self::FallbackSpike => "fallback_spike",
        }
    }
}

/// One detector firing, with the observation that triggered it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthEvent {
    /// Which detector fired.
    pub kind: HealthEventKind,
    /// Chain the event belongs to.
    pub chain: u64,
    /// 1-based sweep iteration at which it fired.
    pub iteration: u64,
    /// Detector-specific magnitude: flatline run length, |fast − slow|
    /// EWMA divergence, or fallback fraction.
    pub value: f64,
}

/// A snapshot of every streaming diagnostic for one chain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthRecord {
    /// Chain identifier.
    pub chain: u64,
    /// 1-based sweep iteration of the snapshot.
    pub iteration: u64,
    /// Total statistic observations since construction (Welford count).
    pub samples: u64,
    /// Statistic observations currently in the ring window.
    pub window: u64,
    /// Running mean of the whole chain (Welford).
    pub mean: f64,
    /// Running sample variance of the whole chain (Welford).
    pub variance: f64,
    /// Windowed effective sample size (Geyer initial-monotone); `None`
    /// until the window holds ≥ 4 samples. Always ≤ `window`.
    pub ess: Option<f64>,
    /// Rank-normalized split R-hat over the window, clamped to ≥ 1;
    /// `None` until the window holds ≥ 8 samples.
    pub rhat: Option<f64>,
    /// Classic (raw-value) split R-hat over the same window split,
    /// unclamped — numerically the quantity `gelman_rubin` reports.
    pub rhat_split: Option<f64>,
    /// Monte-Carlo standard error `sqrt(window variance / ESS)`.
    pub mcse: Option<f64>,
    /// Fast flip-rate EWMA (flips / updates per sweep).
    pub flip_rate: f64,
    /// Cumulative [`HealthEventKind::StuckChain`] events.
    pub events_stuck: u64,
    /// Cumulative [`HealthEventKind::FlipRateDrift`] events.
    pub events_drift: u64,
    /// Cumulative [`HealthEventKind::FallbackSpike`] events.
    pub events_fallback: u64,
}

/// Pre-registered metric handles for one chain (see
/// [`HealthConfig::publish_metrics`]).
#[derive(Debug, Clone, Copy)]
struct HealthMetrics {
    g_rhat: &'static Gauge,
    g_rhat_split: &'static Gauge,
    g_ess: &'static Gauge,
    g_mcse: &'static Gauge,
    g_flip_rate: &'static Gauge,
    c_stuck: &'static Counter,
    c_drift: &'static Counter,
    c_fallback: &'static Counter,
}

impl HealthMetrics {
    fn register(chain: u64) -> Self {
        let chain = chain.to_string();
        let labels: &[(&str, &str)] = &[("chain", &chain)];
        let event = |kind: HealthEventKind| {
            metrics::counter_with(
                "coopmc_health_events_total",
                &[("chain", &chain), ("kind", kind.name())],
            )
        };
        Self {
            g_rhat: metrics::gauge_with("coopmc_health_rhat", labels),
            g_rhat_split: metrics::gauge_with("coopmc_health_rhat_split", labels),
            g_ess: metrics::gauge_with("coopmc_health_ess", labels),
            g_mcse: metrics::gauge_with("coopmc_health_mcse", labels),
            g_flip_rate: metrics::gauge_with("coopmc_health_flip_rate", labels),
            c_stuck: event(HealthEventKind::StuckChain),
            c_drift: event(HealthEventKind::FlipRateDrift),
            c_fallback: event(HealthEventKind::FallbackSpike),
        }
    }
}

/// Incremental chain-health state: engine-owned, all buffers preallocated,
/// warm [`observe_sweep`](Self::observe_sweep) calls allocation-free.
#[derive(Debug)]
pub struct ChainHealth {
    cfg: HealthConfig,
    chain: u64,
    // Welford moments over the full chain.
    count: u64,
    mean: f64,
    m2: f64,
    // Fixed ring buffer of the last `cfg.window` statistics.
    ring: Vec<f64>,
    head: usize,
    filled: usize,
    since_refresh: u64,
    // Preallocated refresh scratch: chronological copy, rank permutation,
    // normal scores.
    chrono: Vec<f64>,
    ranks: Vec<u32>,
    zscores: Vec<f64>,
    // Detector state.
    sweeps: u64,
    flip_fast: f64,
    flip_slow: f64,
    ewma_primed: bool,
    zero_flip_run: u64,
    stuck_latched: bool,
    drift_latched: bool,
    fallback_latched: bool,
    // Outputs.
    record: HealthRecord,
    events: Vec<HealthEvent>,
    dropped_events: u64,
    metrics: Option<HealthMetrics>,
}

/// Fast EWMA smoothing for the flip-rate detector (≈ 8-sweep memory).
const FLIP_FAST_ALPHA: f64 = 0.25;
/// Slow EWMA smoothing (≈ 64-sweep memory), the drift reference.
const FLIP_SLOW_ALPHA: f64 = 1.0 / 32.0;

impl ChainHealth {
    /// Preallocate every buffer and (optionally) intern the chain's metric
    /// handles. No further allocation happens on the observe path.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.window < 8`, `cfg.refresh_stride == 0` or
    /// `cfg.flatline_window == 0`.
    pub fn new(chain: u64, cfg: HealthConfig) -> Self {
        assert!(cfg.window >= 8, "health window must hold >= 8 samples");
        assert!(cfg.refresh_stride > 0, "refresh stride must be positive");
        assert!(cfg.flatline_window > 0, "flatline window must be positive");
        let metrics = cfg.publish_metrics.then(|| HealthMetrics::register(chain));
        Self {
            ring: Vec::with_capacity(cfg.window),
            chrono: Vec::with_capacity(cfg.window),
            ranks: Vec::with_capacity(cfg.window),
            zscores: Vec::with_capacity(cfg.window),
            events: Vec::with_capacity(cfg.max_events),
            record: HealthRecord {
                chain,
                ..HealthRecord::default()
            },
            cfg,
            chain,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            head: 0,
            filled: 0,
            since_refresh: 0,
            sweeps: 0,
            flip_fast: 0.0,
            flip_slow: 0.0,
            ewma_primed: false,
            zero_flip_run: 0,
            stuck_latched: false,
            drift_latched: false,
            fallback_latched: false,
            dropped_events: 0,
            metrics: None,
        }
        .with_metrics(metrics)
    }

    fn with_metrics(mut self, metrics: Option<HealthMetrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The chain this state tracks.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// The latest diagnostics snapshot (fields are `None`/zero until enough
    /// sweeps have been observed).
    pub fn record(&self) -> &HealthRecord {
        &self.record
    }

    /// Every stored anomaly event, in firing order (bounded by
    /// [`HealthConfig::max_events`]).
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Events that arrived after the bounded buffer filled.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Observe one completed sweep. `stat` is the chain's scalar statistic
    /// for the sweep (model energy, log joint, log-likelihood) when the
    /// caller tracks one; flip/fallback detectors run either way.
    ///
    /// Returns `true` when the diagnostics were refreshed this call (the
    /// moment to export a [`HealthRecord`] snapshot).
    pub fn observe_sweep(
        &mut self,
        iteration: u64,
        updates: u64,
        flips: u64,
        uniform_fallbacks: u64,
        stat: Option<f64>,
    ) -> bool {
        self.sweeps += 1;
        self.record.iteration = iteration;
        self.detect(iteration, updates, flips, uniform_fallbacks);
        let mut refreshed = false;
        if let Some(v) = stat {
            self.push_stat(v);
            self.since_refresh += 1;
            if self.since_refresh >= self.cfg.refresh_stride {
                self.refresh();
                refreshed = true;
            }
        }
        self.record.samples = self.count;
        self.record.window = self.filled as u64;
        self.record.mean = self.mean;
        self.record.variance = self.variance();
        self.record.flip_rate = self.flip_fast;
        if refreshed {
            self.publish();
        }
        refreshed
    }

    /// Welford update + ring push for one statistic observation.
    fn push_stat(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        if self.ring.len() < self.cfg.window {
            self.ring.push(v);
        } else {
            self.ring[self.head] = v;
        }
        self.head = (self.head + 1) % self.cfg.window;
        self.filled = self.ring.len();
    }

    /// Running sample variance of the whole chain.
    fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Run the anomaly detectors for one sweep. Each detector is
    /// edge-triggered: it fires once when its condition first holds and
    /// re-arms when the condition clears.
    fn detect(&mut self, iteration: u64, updates: u64, flips: u64, fallbacks: u64) {
        let flip_rate = if updates == 0 {
            0.0
        } else {
            flips as f64 / updates as f64
        };
        if self.ewma_primed {
            self.flip_fast += FLIP_FAST_ALPHA * (flip_rate - self.flip_fast);
            self.flip_slow += FLIP_SLOW_ALPHA * (flip_rate - self.flip_slow);
        } else {
            self.flip_fast = flip_rate;
            self.flip_slow = flip_rate;
            self.ewma_primed = true;
        }

        // Stuck chain: a run of flip-free sweeps.
        if flips == 0 && updates > 0 {
            self.zero_flip_run += 1;
        } else {
            self.zero_flip_run = 0;
            self.stuck_latched = false;
        }
        if self.zero_flip_run >= self.cfg.flatline_window && !self.stuck_latched {
            self.stuck_latched = true;
            self.record.events_stuck += 1;
            self.emit(
                HealthEventKind::StuckChain,
                iteration,
                self.zero_flip_run as f64,
            );
        }

        // Flip-rate drift: fast EWMA diverging from the slow reference.
        // Only meaningful once the slow EWMA has some memory behind it.
        let divergence = (self.flip_fast - self.flip_slow).abs();
        if self.sweeps > 8 && divergence > self.cfg.drift_tolerance {
            if !self.drift_latched {
                self.drift_latched = true;
                self.record.events_drift += 1;
                self.emit(HealthEventKind::FlipRateDrift, iteration, divergence);
            }
        } else if divergence < self.cfg.drift_tolerance / 2.0 {
            self.drift_latched = false;
        }

        // Uniform-fallback spike.
        let fallback_frac = if updates == 0 {
            0.0
        } else {
            fallbacks as f64 / updates as f64
        };
        if fallback_frac > self.cfg.fallback_spike {
            if !self.fallback_latched {
                self.fallback_latched = true;
                self.record.events_fallback += 1;
                self.emit(HealthEventKind::FallbackSpike, iteration, fallback_frac);
            }
        } else if fallback_frac <= self.cfg.fallback_spike / 2.0 {
            self.fallback_latched = false;
        }
    }

    fn emit(&mut self, kind: HealthEventKind, iteration: u64, value: f64) {
        if self.events.len() < self.cfg.max_events {
            self.events.push(HealthEvent {
                kind,
                chain: self.chain,
                iteration,
                value,
            });
        } else {
            self.dropped_events += 1;
        }
        if let Some(m) = &self.metrics {
            match kind {
                HealthEventKind::StuckChain => m.c_stuck.inc(),
                HealthEventKind::FlipRateDrift => m.c_drift.inc(),
                HealthEventKind::FallbackSpike => m.c_fallback.inc(),
            }
        }
    }

    /// Recompute ESS / R-hat / MCSE over the current window using only the
    /// preallocated scratch buffers.
    fn refresh(&mut self) {
        self.since_refresh = 0;
        let n = self.filled;
        // Chronological copy of the ring (oldest first).
        self.chrono.clear();
        if self.ring.len() < self.cfg.window {
            self.chrono.extend_from_slice(&self.ring);
        } else {
            self.chrono.extend_from_slice(&self.ring[self.head..]);
            self.chrono.extend_from_slice(&self.ring[..self.head]);
        }
        debug_assert_eq!(self.chrono.len(), n);

        self.record.ess = (n >= 4).then(|| windowed_ess(&self.chrono));
        if n >= 8 {
            let split = split_rhat(&self.chrono);
            self.record.rhat_split = split.is_finite().then_some(split);
            self.record.rhat = Some(rank_normalized_split_rhat(
                &self.chrono,
                &mut self.ranks,
                &mut self.zscores,
            ));
        } else {
            self.record.rhat = None;
            self.record.rhat_split = None;
        }
        self.record.mcse = match self.record.ess {
            Some(ess) if ess > 0.0 => {
                let wmean = self.chrono.iter().sum::<f64>() / n as f64;
                let wvar = self
                    .chrono
                    .iter()
                    .map(|&x| (x - wmean).powi(2))
                    .sum::<f64>()
                    / n as f64;
                Some((wvar / ess).sqrt())
            }
            _ => None,
        };
    }

    /// Push the current snapshot into the pre-registered gauges.
    fn publish(&self) {
        let Some(m) = &self.metrics else { return };
        if let Some(r) = self.record.rhat {
            m.g_rhat.set(r);
        }
        if let Some(r) = self.record.rhat_split {
            m.g_rhat_split.set(r);
        }
        if let Some(e) = self.record.ess {
            m.g_ess.set(e);
        }
        if let Some(s) = self.record.mcse {
            m.g_mcse.set(s);
        }
        m.g_flip_rate.set(self.record.flip_rate);
    }
}

/// Windowed effective sample size: the `effective_sample_size` estimator of
/// `coopmc_models::diagnostics` (initial-positive pair sums) with Geyer's
/// *initial-monotone* strengthening — each pair sum is additionally clamped
/// to be no larger than its predecessor. For series whose autocorrelation
/// decays monotonically the two truncations agree exactly, which is what
/// the journal-export pin test relies on. Result is capped at `n`.
///
/// # Panics
///
/// Panics on series shorter than 4 samples.
pub fn windowed_ess(series: &[f64]) -> f64 {
    let n = series.len();
    assert!(n >= 4, "series must have at least 4 samples");
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var == 0.0 {
        // A constant window carries one effective observation.
        return 1.0;
    }
    let autocov = |lag: usize| -> f64 {
        (0..n - lag)
            .map(|i| (series[i] - mean) * (series[i + lag] - mean))
            .sum::<f64>()
            / n as f64
    };
    let mut rho_sum = 0.0;
    let mut prev_pair = f64::INFINITY;
    let mut lag = 1usize;
    while lag + 1 < n {
        let mut pair = (autocov(lag) + autocov(lag + 1)) / var;
        if pair <= 0.0 {
            break;
        }
        // Initial-monotone: the pair-sum sequence may never increase.
        pair = pair.min(prev_pair);
        prev_pair = pair;
        rho_sum += pair;
        lag += 2;
    }
    (n as f64 / (1.0 + 2.0 * rho_sum)).min(n as f64)
}

/// Classic split R-hat over one window: the first `2·(n/2)` samples are
/// split into two half-chains and run through the Gelman–Rubin formula
/// (the exact split `journal_jsonl` historically used, including the
/// odd-length truncation). May be `inf` for constant-but-different halves
/// and slightly below 1 for well-mixed windows; not clamped.
///
/// # Panics
///
/// Panics on windows shorter than 8 samples.
pub fn split_rhat(window: &[f64]) -> f64 {
    let half = window.len() / 2;
    assert!(half >= 4, "split R-hat needs at least 8 samples");
    let a = &window[..half];
    let b = &window[half..half * 2];
    let n = half as f64;
    let mean = |s: &[f64]| s.iter().sum::<f64>() / n;
    let (ma, mb) = (mean(a), mean(b));
    let grand = (ma + mb) / 2.0;
    // Between-chain variance over m = 2 chains.
    let bvar = n * ((ma - grand).powi(2) + (mb - grand).powi(2));
    let svar = |s: &[f64], mu: f64| s.iter().map(|&x| (x - mu).powi(2)).sum::<f64>() / (n - 1.0);
    let w = (svar(a, ma) + svar(b, mb)) / 2.0;
    if w == 0.0 {
        return if bvar == 0.0 { 1.0 } else { f64::INFINITY };
    }
    let var_plus = (n - 1.0) / n * w + bvar / n;
    (var_plus / w).sqrt()
}

/// Rank-normalized split R-hat: window values are replaced by normal scores
/// of their in-window ranks (`Φ⁻¹((r − 3/8) / (n + 1/4))`, ties broken by
/// arrival order) and the classic split R-hat is computed on the scores.
/// Robust to heavy tails and non-Gaussian statistics; clamped to ≥ 1.
///
/// `ranks` and `zscores` are caller-provided scratch (cleared and refilled;
/// no allocation beyond their existing capacity).
///
/// # Panics
///
/// Panics on windows shorter than 8 samples.
pub fn rank_normalized_split_rhat(
    window: &[f64],
    ranks: &mut Vec<u32>,
    zscores: &mut Vec<f64>,
) -> f64 {
    let n = window.len();
    assert!(
        n >= 8,
        "rank-normalized split R-hat needs at least 8 samples"
    );
    ranks.clear();
    ranks.extend(0..n as u32);
    ranks.sort_unstable_by(|&a, &b| {
        window[a as usize]
            .partial_cmp(&window[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    zscores.clear();
    zscores.resize(n, 0.0);
    for (pos, &idx) in ranks.iter().enumerate() {
        // Fractional rank → normal score (Blom's offset).
        let p = (pos as f64 + 1.0 - 0.375) / (n as f64 + 0.25);
        zscores[idx as usize] = inverse_normal_cdf(p);
    }
    split_rhat(zscores).max(1.0)
}

/// Acklam's rational approximation of the standard normal quantile
/// function Φ⁻¹, accurate to ~1.15e-9 over (0, 1) — far below the
/// resolution any rank statistic needs.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// The verdict a [`ConvergenceController`] hands back between sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep sampling.
    Continue,
    /// Convergence criteria met — the engine stops the run.
    Stop,
}

/// The between-sweep hook the engines consult (`run_controlled`). The
/// default implementation, [`NoControl`], statically dispatches into
/// nothing and keeps the controlled path identical to the plain `run`.
pub trait ConvergenceController {
    /// Observe one completed sweep and decide whether to keep running.
    fn observe_sweep(
        &mut self,
        iteration: u64,
        updates: u64,
        flips: u64,
        uniform_fallbacks: u64,
        stat: Option<f64>,
    ) -> Decision;
}

/// The zero-cost disabled controller: never stops, observes nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoControl;

impl ConvergenceController for NoControl {
    #[inline]
    fn observe_sweep(&mut self, _: u64, _: u64, _: u64, _: u64, _: Option<f64>) -> Decision {
        Decision::Continue
    }
}

/// Why (and where) an [`EarlyStop`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StopInfo {
    /// The controller stopped the run before the sweep budget ran out.
    pub stopped_early: bool,
    /// Last observed 1-based sweep iteration.
    pub iteration: u64,
    /// Rank-normalized R-hat at the decision point.
    pub rhat: Option<f64>,
    /// Windowed ESS at the decision point.
    pub ess: Option<f64>,
}

/// Early-stop convergence controller: wraps a [`ChainHealth`] and stops the
/// chain once rank-normalized split R-hat ≤ `rhat_threshold` **and**
/// windowed ESS ≥ `ess_budget`. Refreshed [`HealthRecord`] snapshots are
/// forwarded to the attached [`Recorder`] (so `--journal-out` captures
/// them); the default `NoopRecorder` discards them for free.
pub struct EarlyStop<'a> {
    health: ChainHealth,
    rhat_threshold: f64,
    ess_budget: f64,
    min_sweeps: u64,
    recorder: &'a dyn Recorder,
    info: StopInfo,
}

impl std::fmt::Debug for EarlyStop<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EarlyStop")
            .field("health", &self.health)
            .field("rhat_threshold", &self.rhat_threshold)
            .field("ess_budget", &self.ess_budget)
            .field("min_sweeps", &self.min_sweeps)
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

/// Minimum sweeps before an early stop may trigger (diagnostics over a
/// near-empty window are noise).
const DEFAULT_MIN_SWEEPS: u64 = 16;

impl<'a> EarlyStop<'a> {
    /// A controller around `health` with the given convergence criteria.
    /// Pass `f64::INFINITY` as `ess_budget` (or `0.0` as `rhat_threshold`)
    /// to monitor without ever stopping.
    pub fn new(health: ChainHealth, rhat_threshold: f64, ess_budget: f64) -> Self {
        Self {
            health,
            rhat_threshold,
            ess_budget,
            min_sweeps: DEFAULT_MIN_SWEEPS,
            recorder: &crate::trace::NoopRecorder,
            info: StopInfo::default(),
        }
    }

    /// A monitor-only controller: streams diagnostics, never stops.
    pub fn monitor(health: ChainHealth) -> Self {
        Self::new(health, 0.0, f64::INFINITY)
    }

    /// Forward refreshed health records to `recorder` (journal capture).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Require at least `min_sweeps` before stopping.
    pub fn with_min_sweeps(mut self, min_sweeps: u64) -> Self {
        self.min_sweeps = min_sweeps;
        self
    }

    /// The wrapped health state.
    pub fn health(&self) -> &ChainHealth {
        &self.health
    }

    /// Where the run ended and the diagnostics at that point.
    pub fn stop_info(&self) -> StopInfo {
        self.info
    }
}

impl ConvergenceController for EarlyStop<'_> {
    fn observe_sweep(
        &mut self,
        iteration: u64,
        updates: u64,
        flips: u64,
        uniform_fallbacks: u64,
        stat: Option<f64>,
    ) -> Decision {
        let refreshed =
            self.health
                .observe_sweep(iteration, updates, flips, uniform_fallbacks, stat);
        let record = self.health.record();
        if refreshed && self.recorder.enabled() {
            self.recorder.health(record);
        }
        self.info.iteration = iteration;
        self.info.rhat = record.rhat;
        self.info.ess = record.ess;
        if iteration >= self.min_sweeps {
            if let (Some(rhat), Some(ess)) = (record.rhat, record.ess) {
                if rhat <= self.rhat_threshold && ess >= self.ess_budget {
                    self.info.stopped_early = true;
                    return Decision::Stop;
                }
            }
        }
        Decision::Continue
    }
}

/// Render a [`HealthRecord`] as its `coopmc-health/1` journal line (no
/// trailing newline). Thin re-export so callers don't need the journal
/// module for one function.
pub fn health_line(record: &HealthRecord) -> String {
    render_health_line(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopmc_models::diagnostics::{effective_sample_size, gelman_rubin};

    /// A deterministic AR(1)-flavoured series with smoothly decaying
    /// autocorrelation (pair sums monotone, so initial-positive and
    /// initial-monotone truncations coincide).
    fn ar1_series(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = coopmc_rng_stub(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + rng();
                x
            })
            .collect()
    }

    /// Tiny splitmix-style generator so this crate's tests stay dependency-
    /// free (coopmc-rng is not a dependency of coopmc-obs).
    fn coopmc_rng_stub(mut state: u64) -> impl FnMut() -> f64 {
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }
    }

    fn observe_series(h: &mut ChainHealth, series: &[f64]) {
        for (i, &v) in series.iter().enumerate() {
            h.observe_sweep(i as u64 + 1, 100, 30, 0, Some(v));
        }
    }

    #[test]
    fn windowed_ess_matches_full_series_estimator_when_window_covers_it() {
        let series = ar1_series(200, 0.8, 42);
        let old = effective_sample_size(&series);
        let new = windowed_ess(&series);
        assert!(
            (old - new).abs() < 1e-9,
            "windowed {new} vs full-series {old}"
        );
        // Sticky chains keep a small ESS, iid-ish chains a large one.
        assert!(new < 100.0, "AR(0.8) ESS must be well below n: {new}");
        let iid = ar1_series(200, 0.0, 7);
        assert!(windowed_ess(&iid) > 100.0);
    }

    #[test]
    fn split_rhat_matches_gelman_rubin_on_the_same_split() {
        let series = ar1_series(64, 0.5, 9);
        let half = series.len() / 2;
        let expected = gelman_rubin(&[series[..half].to_vec(), series[half..].to_vec()]);
        let got = split_rhat(&series);
        assert!((expected - got).abs() < 1e-12, "{expected} vs {got}");
    }

    #[test]
    fn rank_normalized_rhat_flags_drift_and_clears_on_mixing() {
        let (mut ranks, mut z) = (Vec::new(), Vec::new());
        let mixed = ar1_series(128, 0.1, 3);
        let r = rank_normalized_split_rhat(&mixed, &mut ranks, &mut z);
        assert!((1.0..1.1).contains(&r), "well-mixed window: {r}");
        // A strongly drifting window: halves occupy disjoint rank ranges.
        let drift: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let r = rank_normalized_split_rhat(&drift, &mut ranks, &mut z);
        assert!(r > 2.0, "drifting window must be flagged: {r}");
    }

    #[test]
    fn rank_normalization_is_robust_to_heavy_tails() {
        // One enormous outlier wrecks the classic estimator's variance but
        // moves a rank statistic by a single rank.
        let mut series = ar1_series(128, 0.1, 11);
        series[64] = 1e12;
        let (mut ranks, mut z) = (Vec::new(), Vec::new());
        let rank = rank_normalized_split_rhat(&series, &mut ranks, &mut z);
        assert!(rank < 1.1, "rank R-hat must shrug off the outlier: {rank}");
    }

    #[test]
    fn inverse_normal_cdf_round_trips_known_points() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(1e-6) + 4.753424).abs() < 1e-4);
        // Antisymmetric up to the rounding of `p - 0.5`.
        assert!((inverse_normal_cdf(0.8) + inverse_normal_cdf(0.2)).abs() < 1e-12);
    }

    #[test]
    fn welford_moments_match_batch_computation() {
        let series = ar1_series(300, 0.6, 5);
        let mut h = ChainHealth::new(
            0,
            HealthConfig {
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        observe_series(&mut h, &series);
        let n = series.len() as f64;
        let mean = series.iter().sum::<f64>() / n;
        let var = series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let rec = h.record();
        assert_eq!(rec.samples, 300);
        assert!((rec.mean - mean).abs() < 1e-9);
        assert!((rec.variance - var).abs() < 1e-9);
        assert_eq!(rec.window, 256, "ring caps at the configured window");
    }

    #[test]
    fn ring_window_tracks_only_recent_samples() {
        let mut h = ChainHealth::new(
            0,
            HealthConfig {
                window: 16,
                refresh_stride: 1,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        // 100 early samples around 0, then 16 late samples around 50: the
        // windowed diagnostics must only see the recent regime.
        for i in 0..100u64 {
            h.observe_sweep(i + 1, 10, 5, 0, Some((i % 3) as f64));
        }
        for i in 0..16u64 {
            h.observe_sweep(101 + i, 10, 5, 0, Some(50.0 + (i % 4) as f64));
        }
        let rec = h.record();
        assert_eq!(rec.window, 16);
        let mcse = rec.mcse.unwrap();
        // Window values sit in [50, 53], so a window-derived MCSE is small.
        assert!(mcse < 4.0, "windowed MCSE {mcse}");
        assert!(rec.mean < 10.0, "Welford mean still covers the full chain");
    }

    #[test]
    fn stuck_chain_event_fires_once_per_flatline() {
        let mut h = ChainHealth::new(
            3,
            HealthConfig {
                flatline_window: 5,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        for i in 0..20u64 {
            h.observe_sweep(i + 1, 64, 0, 0, Some(1.0));
        }
        assert_eq!(h.record().events_stuck, 1, "latched after first firing");
        let ev = &h.events()[0];
        assert_eq!(ev.kind, HealthEventKind::StuckChain);
        assert_eq!(ev.chain, 3);
        assert_eq!(ev.iteration, 5);
        // Flips resume, then flatline again: a second event.
        h.observe_sweep(21, 64, 10, 0, Some(2.0));
        for i in 0..6u64 {
            h.observe_sweep(22 + i, 64, 0, 0, Some(1.0));
        }
        assert_eq!(h.record().events_stuck, 2);
    }

    #[test]
    fn flip_rate_drift_event_fires_on_regime_change() {
        let mut h = ChainHealth::new(
            0,
            HealthConfig {
                drift_tolerance: 0.2,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        for i in 0..40u64 {
            h.observe_sweep(i + 1, 100, 60, 0, Some(i as f64));
        }
        assert_eq!(h.record().events_drift, 0, "stable regime: no drift");
        // Collapse the flip rate: fast EWMA dives, slow EWMA lags.
        for i in 0..20u64 {
            h.observe_sweep(41 + i, 100, 0, 0, Some(i as f64));
        }
        assert_eq!(h.record().events_drift, 1);
        assert!(h
            .events()
            .iter()
            .any(|e| e.kind == HealthEventKind::FlipRateDrift));
    }

    #[test]
    fn fallback_spike_event_is_edge_triggered() {
        let mut h = ChainHealth::new(
            0,
            HealthConfig {
                fallback_spike: 0.05,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        h.observe_sweep(1, 100, 50, 0, None);
        h.observe_sweep(2, 100, 50, 20, None); // 20% fallback: spike
        h.observe_sweep(3, 100, 50, 19, None); // still high: latched
        h.observe_sweep(4, 100, 50, 0, None); // clears
        h.observe_sweep(5, 100, 50, 30, None); // second spike
        assert_eq!(h.record().events_fallback, 2);
        let values: Vec<f64> = h
            .events()
            .iter()
            .filter(|e| e.kind == HealthEventKind::FallbackSpike)
            .map(|e| e.value)
            .collect();
        assert_eq!(values, vec![0.2, 0.3]);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let mut h = ChainHealth::new(
            0,
            HealthConfig {
                flatline_window: 1,
                max_events: 4,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        // Alternate flatline and flips so the stuck detector re-fires.
        for i in 0..20u64 {
            let flips = if i % 2 == 0 { 0 } else { 8 };
            h.observe_sweep(i + 1, 16, flips, 0, None);
        }
        assert_eq!(h.events().len(), 4);
        assert!(h.dropped_events() > 0);
        assert_eq!(
            h.record().events_stuck,
            h.events().len() as u64 + h.dropped_events()
        );
    }

    #[test]
    fn early_stop_controller_stops_on_converged_mixed_chain() {
        let health = ChainHealth::new(
            0,
            HealthConfig {
                window: 64,
                refresh_stride: 4,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        let mut ctl = EarlyStop::new(health, 1.05, 30.0).with_min_sweeps(16);
        let series = ar1_series(400, 0.1, 77);
        let mut stopped_at = None;
        for (i, &v) in series.iter().enumerate() {
            let it = i as u64 + 1;
            if ctl.observe_sweep(it, 100, 40, 0, Some(v)) == Decision::Stop {
                stopped_at = Some(it);
                break;
            }
        }
        let at = stopped_at.expect("a well-mixed chain must converge");
        assert!(at < 200, "stopped at {at}, expected < 50% of budget");
        let info = ctl.stop_info();
        assert!(info.stopped_early);
        assert_eq!(info.iteration, at);
        assert!(info.rhat.unwrap() <= 1.05);
        assert!(info.ess.unwrap() >= 30.0);
    }

    #[test]
    fn early_stop_controller_never_stops_a_drifting_chain() {
        let health = ChainHealth::new(
            0,
            HealthConfig {
                window: 64,
                refresh_stride: 4,
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        let mut ctl = EarlyStop::new(health, 1.05, 30.0);
        for i in 0..300u64 {
            // A monotone drifting statistic: R-hat stays far above 1.
            let d = ctl.observe_sweep(i + 1, 100, 40, 0, Some(i as f64));
            assert_eq!(d, Decision::Continue, "drifting chain stopped at {i}");
        }
        assert!(!ctl.stop_info().stopped_early);
        assert!(ctl.stop_info().rhat.unwrap() > 1.5);
    }

    #[test]
    fn no_control_always_continues() {
        let mut ctl = NoControl;
        for i in 0..10 {
            assert_eq!(
                ctl.observe_sweep(i + 1, 1, 0, 0, Some(0.0)),
                Decision::Continue
            );
        }
    }

    #[test]
    fn monitor_mode_never_stops_but_tracks_diagnostics() {
        let health = ChainHealth::new(
            0,
            HealthConfig {
                publish_metrics: false,
                ..HealthConfig::default()
            },
        );
        let mut ctl = EarlyStop::monitor(health);
        let series = ar1_series(100, 0.1, 5);
        for (i, &v) in series.iter().enumerate() {
            assert_eq!(
                ctl.observe_sweep(i as u64 + 1, 100, 40, 0, Some(v)),
                Decision::Continue
            );
        }
        assert!(ctl.health().record().ess.is_some());
        assert!(ctl.health().record().rhat.is_some());
    }

    #[test]
    fn published_metrics_surface_in_the_registry() {
        let mut h = ChainHealth::new(
            91,
            HealthConfig {
                refresh_stride: 1,
                ..HealthConfig::default()
            },
        );
        let series = ar1_series(32, 0.2, 13);
        observe_series(&mut h, &series);
        let text = metrics::render();
        assert!(text.contains("coopmc_health_rhat{chain=\"91\"}"));
        assert!(text.contains("coopmc_health_ess{chain=\"91\"}"));
        assert!(text.contains("coopmc_health_events_total{chain=\"91\",kind=\"stuck_chain\"}"));
    }

    #[test]
    #[should_panic(expected = "window must hold")]
    fn tiny_window_panics() {
        let _ = ChainHealth::new(
            0,
            HealthConfig {
                window: 4,
                ..HealthConfig::default()
            },
        );
    }
}
