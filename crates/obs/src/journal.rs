//! The run journal: one JSONL record per sweep per chain.
//!
//! Every enabled recorder emits the same schema (`coopmc-journal/1`),
//! whether the sweep came from the sequential [`GibbsEngine`], the
//! chromatic worker-pool engine or a bench harness — so regression tooling
//! can diff runs across engines, precision configs and PRs. Each line
//! carries the Table II phase split (wall time *and* modeled hardware
//! cycles), the DyNorm/TableExp kernel telemetry of §III, chain-quality
//! statistics (label-flip rate, uniform-fallback count, running ESS and
//! split-chain Gelman–Rubin), and per-color worker-pool utilization.
//!
//! [`GibbsEngine`]: ../../coopmc_core/engine/struct.GibbsEngine.html

use crate::health::HealthRecord;
use crate::json::{self, Value};

/// Schema identifier embedded in every journal line.
pub const SCHEMA: &str = "coopmc-journal/1";

/// Schema identifier of chain-health records interleaved into the journal.
pub const HEALTH_SCHEMA: &str = "coopmc-health/1";

/// Schema identifier of kernel-profile records appended to the journal.
pub const PROFILE_SCHEMA: &str = "coopmc-profile/1";

/// Per-color-class worker-pool sample within one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ColorSample {
    /// Color-class index within the sweep.
    pub class: u64,
    /// Wall time of the class barrier (dispatch → last commit), ns.
    pub wall_ns: u64,
    /// Summed worker busy time inside the barrier, ns.
    pub busy_ns: u64,
    /// `busy / (wall × threads)` — 1.0 means no worker ever idled.
    pub utilization: f64,
}

/// One journal record: everything observed about one sweep of one chain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSample {
    /// Chain identifier (0 for single-chain runs).
    pub chain: u64,
    /// 1-based sweep index; strictly increasing within a chain.
    pub iteration: u64,
    /// Nanoseconds since the recorder epoch at sweep start.
    pub start_ns: u64,
    /// Wall time of the whole sweep, ns.
    pub wall_ns: u64,
    /// Variables resampled this sweep.
    pub updates: u64,
    /// Resampled variables whose label changed.
    pub flips: u64,
    /// Draws that hit the all-zero-mass uniform fallback (the Fig. 2
    /// flush regime).
    pub uniform_fallbacks: u64,
    /// Wall time in Probability Generation, ns.
    pub pg_ns: u64,
    /// Wall time in Sampling-from-Distribution, ns.
    pub sd_ns: u64,
    /// Wall time in Parameter Update, ns.
    pub pu_ns: u64,
    /// Modeled PG datapath cycles this sweep.
    pub pg_cycles: u64,
    /// Modeled sampler cycles this sweep.
    pub sd_cycles: u64,
    /// Modeled PU cycles this sweep (`PU_CYCLES × updates`).
    pub pu_cycles: u64,
    /// Batched PG evaluations (`generate_batch_into` strides) this sweep;
    /// 0 for scalar engines or a batch stride of 1.
    pub pg_batches: u64,
    /// Total rows evaluated through batched PG strides this sweep.
    pub pg_batch_rows: u64,
    /// Largest NormTree maximum observed across the sweep's PG calls
    /// (`None` when no DyNorm datapath ran).
    pub norm_max: Option<f64>,
    /// Smallest exp-kernel input observed (post-normalization).
    pub exp_in_min: Option<f64>,
    /// Largest exp-kernel input observed (post-normalization).
    pub exp_in_max: Option<f64>,
    /// Model statistic for this sweep (MRF energy, BN log joint, LDA
    /// log-likelihood), when an observer supplied one.
    pub stat: Option<f64>,
    /// Per-color worker-pool utilization (chromatic engine only).
    pub colors: Vec<ColorSample>,
}

/// Render one journal line (no trailing newline). `ess` / `rhat` are the
/// running diagnostics computed over the chain so far; pass `None` while
/// there are too few samples.
pub fn render_line(s: &SweepSample, ess: Option<f64>, rhat: Option<f64>) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str("\"schema\":");
    json::write_str(&mut out, SCHEMA);
    for (key, v) in [
        ("chain", s.chain),
        ("iteration", s.iteration),
        ("start_ns", s.start_ns),
        ("wall_ns", s.wall_ns),
        ("updates", s.updates),
        ("flips", s.flips),
        ("uniform_fallbacks", s.uniform_fallbacks),
        ("pg_ns", s.pg_ns),
        ("sd_ns", s.sd_ns),
        ("pu_ns", s.pu_ns),
        ("pg_cycles", s.pg_cycles),
        ("sd_cycles", s.sd_cycles),
        ("pu_cycles", s.pu_cycles),
        ("pg_batches", s.pg_batches),
        ("pg_batch_rows", s.pg_batch_rows),
    ] {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
    for (key, v) in [
        ("norm_max", s.norm_max),
        ("exp_in_min", s.exp_in_min),
        ("exp_in_max", s.exp_in_max),
        ("stat", s.stat),
        ("ess", ess),
        ("rhat", rhat),
    ] {
        out.push_str(&format!(",\"{key}\":"));
        json::write_opt_num(&mut out, v);
    }
    out.push_str(",\"colors\":[");
    for (i, c) in s.colors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"class\":{},\"wall_ns\":{},\"busy_ns\":{},\"utilization\":",
            c.class, c.wall_ns, c.busy_ns
        ));
        json::write_num(&mut out, c.utilization);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render one chain-health record as its `coopmc-health/1` journal line
/// (no trailing newline). Health lines carry the streaming diagnostics a
/// [`crate::health::ChainHealth`] refreshed at that iteration; they are
/// interleaved with the sweep lines of the same chain.
pub fn render_health_line(r: &HealthRecord) -> String {
    let mut out = String::with_capacity(320);
    out.push('{');
    out.push_str("\"schema\":");
    json::write_str(&mut out, HEALTH_SCHEMA);
    for (key, v) in [
        ("chain", r.chain),
        ("iteration", r.iteration),
        ("samples", r.samples),
        ("window", r.window),
        ("events_stuck", r.events_stuck),
        ("events_drift", r.events_drift),
        ("events_fallback", r.events_fallback),
    ] {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
    for (key, v) in [
        ("mean", r.mean),
        ("variance", r.variance),
        ("flip_rate", r.flip_rate),
    ] {
        out.push_str(&format!(",\"{key}\":"));
        json::write_num(&mut out, v);
    }
    for (key, v) in [
        ("ess", r.ess),
        ("rhat", r.rhat),
        ("rhat_split", r.rhat_split),
        ("mcse", r.mcse),
    ] {
        out.push_str(&format!(",\"{key}\":"));
        json::write_opt_num(&mut out, v);
    }
    out.push('}');
    out
}

/// The fields a health line must carry as non-negative integers.
const HEALTH_COUNTS: [&str; 6] = [
    "iteration",
    "samples",
    "window",
    "events_stuck",
    "events_drift",
    "events_fallback",
];

/// Validate one parsed `coopmc-health/1` line: structural checks plus the
/// diagnostic range rules — rank-normalized `rhat` must be ≥ 1, `ess` must
/// be non-negative and can never exceed the samples it was computed from,
/// `mcse` and `variance` must be non-negative and `flip_rate` must be a
/// fraction. (`rhat_split` is the classic unclamped estimator and is only
/// required to be a number or null.)
pub fn validate_health_line(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema' field")?;
    if schema != HEALTH_SCHEMA {
        return Err(format!("schema '{schema}' is not '{HEALTH_SCHEMA}'"));
    }
    v.get("chain")
        .and_then(Value::as_num)
        .ok_or("missing numeric 'chain'")?;
    for key in HEALTH_COUNTS {
        let n = v
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("missing numeric '{key}'"))?;
        if n < 0.0 || n != n.trunc() {
            return Err(format!("'{key}' must be a non-negative integer, got {n}"));
        }
    }
    if v.get("iteration").and_then(Value::as_num) == Some(0.0) {
        return Err("'iteration' is 1-based and must be positive".to_owned());
    }
    let samples = v.get("samples").and_then(Value::as_num).unwrap_or(0.0);
    let window = v.get("window").and_then(Value::as_num).unwrap_or(0.0);
    if window > samples {
        return Err(format!("'window' {window} exceeds 'samples' {samples}"));
    }
    for key in ["mean", "variance", "flip_rate"] {
        v.get(key)
            .and_then(Value::as_num)
            .filter(|n| n.is_finite())
            .ok_or_else(|| format!("missing finite numeric '{key}'"))?;
    }
    let num_or_null = |key: &str| -> Result<Option<f64>, String> {
        match v.get(key) {
            Some(field) if field.is_null() => Ok(None),
            Some(field) => field
                .as_num()
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a number or null")),
            None => Err(format!("missing '{key}'")),
        }
    };
    if let Some(ess) = num_or_null("ess")? {
        if ess < 0.0 {
            return Err(format!("'ess' must be non-negative, got {ess}"));
        }
        if ess > window {
            return Err(format!(
                "'ess' {ess} exceeds the window of {window} samples"
            ));
        }
    }
    if let Some(rhat) = num_or_null("rhat")? {
        if rhat < 1.0 {
            return Err(format!("rank-normalized 'rhat' must be >= 1.0, got {rhat}"));
        }
    }
    num_or_null("rhat_split")?;
    if let Some(mcse) = num_or_null("mcse")? {
        if mcse < 0.0 {
            return Err(format!("'mcse' must be non-negative, got {mcse}"));
        }
    }
    let fr = v.get("flip_rate").and_then(Value::as_num).unwrap_or(0.0);
    if !(0.0..=1.0).contains(&fr) {
        return Err(format!("'flip_rate' {fr} outside [0, 1]"));
    }
    let var = v.get("variance").and_then(Value::as_num).unwrap_or(0.0);
    if var < 0.0 {
        return Err(format!("'variance' must be non-negative, got {var}"));
    }
    Ok(())
}

/// One `(worker lane, kernel)` attribution row of the `coopmc-profile/1`
/// journal section, rendered by [`render_profile_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSample {
    /// Chain identifier (0 for single-chain runs).
    pub chain: u64,
    /// Lane index: 0 is the coordinator, `i > 0` is pool worker `i - 1`.
    pub worker: u64,
    /// Kernel wire name (one of the [`crate::profile::Kernel`] names).
    pub kernel: &'static str,
    /// Phase the kernel belongs to (`root`, `pg`, `sd`, `pu`, `pool`).
    pub phase: &'static str,
    /// Number of closed spans.
    pub calls: u64,
    /// Inclusive wall time, ns.
    pub total_ns: u64,
    /// Exclusive wall time, ns (`self_ns ≤ total_ns`).
    pub self_ns: u64,
    /// Modeled hardware cycles attributed to this row.
    pub modeled_cycles: u64,
    /// Ring-capacity span losses on this lane.
    pub spans_dropped: u64,
    /// Span-stack imbalance events on this lane (0 on a healthy run).
    pub unclosed: u64,
}

/// Render one `coopmc-profile/1` journal line (no trailing newline).
pub fn render_profile_line(s: &ProfileSample) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    out.push_str("\"schema\":");
    json::write_str(&mut out, PROFILE_SCHEMA);
    out.push_str(&format!(",\"chain\":{},\"worker\":{}", s.chain, s.worker));
    out.push_str(",\"kernel\":");
    json::write_str(&mut out, s.kernel);
    out.push_str(",\"phase\":");
    json::write_str(&mut out, s.phase);
    for (key, v) in [
        ("calls", s.calls),
        ("total_ns", s.total_ns),
        ("self_ns", s.self_ns),
        ("modeled_cycles", s.modeled_cycles),
        ("spans_dropped", s.spans_dropped),
        ("unclosed", s.unclosed),
    ] {
        out.push_str(&format!(",\"{key}\":{v}"));
    }
    out.push('}');
    out
}

/// The fields a profile line must carry as non-negative integers.
const PROFILE_COUNTS: [&str; 7] = [
    "worker",
    "calls",
    "total_ns",
    "self_ns",
    "modeled_cycles",
    "spans_dropped",
    "unclosed",
];

/// Validate one parsed `coopmc-profile/1` line: the kernel name must be in
/// the profiler vocabulary with its matching phase, every count must be a
/// non-negative integer (negative durations are impossible by
/// construction and rejected here), self time can never exceed total
/// time, and `unclosed` must be zero — a nonzero value means the span
/// stack was imbalanced during the run.
pub fn validate_profile_line(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema' field")?;
    if schema != PROFILE_SCHEMA {
        return Err(format!("schema '{schema}' is not '{PROFILE_SCHEMA}'"));
    }
    v.get("chain")
        .and_then(Value::as_num)
        .ok_or("missing numeric 'chain'")?;
    for key in PROFILE_COUNTS {
        let n = v
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("missing numeric '{key}'"))?;
        if n < 0.0 || n != n.trunc() {
            return Err(format!("'{key}' must be a non-negative integer, got {n}"));
        }
    }
    let name = v
        .get("kernel")
        .and_then(Value::as_str)
        .ok_or("missing string 'kernel'")?;
    let kernel = crate::profile::Kernel::from_name(name)
        .ok_or_else(|| format!("unknown kernel '{name}'"))?;
    let phase = v
        .get("phase")
        .and_then(Value::as_str)
        .ok_or("missing string 'phase'")?;
    if phase != kernel.phase() {
        return Err(format!(
            "kernel '{name}' belongs to phase '{}', got '{phase}'",
            kernel.phase()
        ));
    }
    let total = v.get("total_ns").and_then(Value::as_num).unwrap_or(0.0);
    let self_ns = v.get("self_ns").and_then(Value::as_num).unwrap_or(0.0);
    if self_ns > total {
        return Err(format!(
            "self-time {self_ns} exceeds total-time {total} for kernel '{name}'"
        ));
    }
    let unclosed = v.get("unclosed").and_then(Value::as_num).unwrap_or(0.0);
    if unclosed != 0.0 {
        return Err(format!(
            "span-stack imbalance: {unclosed} unclosed spans on worker lane for kernel '{name}'"
        ));
    }
    Ok(())
}

/// The fields a journal line must carry as non-negative integers.
const REQUIRED_COUNTS: [&str; 14] = [
    "iteration",
    "start_ns",
    "wall_ns",
    "updates",
    "flips",
    "uniform_fallbacks",
    "pg_ns",
    "sd_ns",
    "pu_ns",
    "pg_cycles",
    "sd_cycles",
    "pu_cycles",
    "pg_batches",
    "pg_batch_rows",
];

/// The fields that must be present as a finite number **or** `null`.
const NULLABLE_NUMS: [&str; 6] = [
    "norm_max",
    "exp_in_min",
    "exp_in_max",
    "stat",
    "ess",
    "rhat",
];

/// Validate one parsed journal line against the `coopmc-journal/1` schema.
///
/// Checks the schema tag, that every required count field is present and a
/// non-negative integer-valued number, that nullable numeric fields are
/// numbers or `null`, and that `colors` (if present) is an array of
/// well-formed color samples with `0 ≤ utilization ≤ 1`.
pub fn validate_line(v: &Value) -> Result<(), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema' field")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}' is not '{SCHEMA}'"));
    }
    v.get("chain")
        .and_then(Value::as_num)
        .ok_or("missing numeric 'chain'")?;
    for key in REQUIRED_COUNTS {
        let n = v
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("missing numeric '{key}'"))?;
        if n < 0.0 || n != n.trunc() {
            return Err(format!("'{key}' must be a non-negative integer, got {n}"));
        }
    }
    if v.get("iteration").and_then(Value::as_num) == Some(0.0) {
        return Err("'iteration' is 1-based and must be positive".to_owned());
    }
    for key in NULLABLE_NUMS {
        match v.get(key) {
            Some(field) if field.is_null() || field.as_num().is_some() => {}
            Some(_) => return Err(format!("'{key}' must be a number or null")),
            None => return Err(format!("missing '{key}'")),
        }
    }
    if let Some(colors) = v.get("colors") {
        let arr = colors.as_arr().ok_or("'colors' must be an array")?;
        for (i, c) in arr.iter().enumerate() {
            for key in ["class", "wall_ns", "busy_ns"] {
                c.get(key)
                    .and_then(Value::as_num)
                    .filter(|&n| n >= 0.0)
                    .ok_or_else(|| format!("colors[{i}].{key} must be a non-negative number"))?;
            }
            let u = c
                .get("utilization")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("colors[{i}].utilization must be a number"))?;
            if !(0.0..=1.0).contains(&u) {
                return Err(format!("colors[{i}].utilization {u} outside [0, 1]"));
            }
        }
    }
    Ok(())
}

/// Validate a whole JSONL journal: every line parses, sweep lines pass
/// [`validate_line`], interleaved `coopmc-health/1` lines pass
/// [`validate_health_line`], appended `coopmc-profile/1` lines pass
/// [`validate_profile_line`], and iteration numbers are strictly
/// increasing within each chain (sweep and health lines track
/// monotonicity independently — a health record shares the iteration of
/// the sweep that refreshed it; profile lines are per-run aggregates with
/// no iteration). Returns the number of validated lines.
pub fn validate_journal(text: &str) -> Result<usize, String> {
    let mut last_iter: std::collections::BTreeMap<(u64, bool), u64> =
        std::collections::BTreeMap::new();
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema == PROFILE_SCHEMA {
            validate_profile_line(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            lines += 1;
            continue;
        }
        let is_health = schema == HEALTH_SCHEMA;
        if is_health {
            validate_health_line(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        } else {
            validate_line(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        let chain = v.get("chain").and_then(Value::as_num).unwrap_or(0.0) as u64;
        let iter = v.get("iteration").and_then(Value::as_num).unwrap_or(0.0) as u64;
        if let Some(&prev) = last_iter.get(&(chain, is_health)) {
            if iter <= prev {
                return Err(format!(
                    "line {}: iteration {iter} not greater than previous {prev} on chain {chain}",
                    lineno + 1
                ));
            }
        }
        last_iter.insert((chain, is_health), iter);
        lines += 1;
    }
    if lines == 0 {
        return Err("journal is empty".to_owned());
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iter: u64) -> SweepSample {
        SweepSample {
            chain: 0,
            iteration: iter,
            start_ns: iter * 1000,
            wall_ns: 900,
            updates: 64,
            flips: 7,
            uniform_fallbacks: 0,
            pg_ns: 500,
            sd_ns: 300,
            pu_ns: 100,
            pg_cycles: 640,
            sd_cycles: 320,
            pu_cycles: 256,
            pg_batches: 8,
            pg_batch_rows: 64,
            norm_max: Some(-1.5),
            exp_in_min: Some(-8.0),
            exp_in_max: Some(0.0),
            stat: Some(-123.0),
            colors: vec![ColorSample {
                class: 0,
                wall_ns: 450,
                busy_ns: 400,
                utilization: 0.888,
            }],
        }
    }

    #[test]
    fn rendered_lines_validate() {
        let text = format!(
            "{}\n{}\n",
            render_line(&sample(1), None, None),
            render_line(&sample(2), Some(3.4), Some(1.01)),
        );
        assert_eq!(validate_journal(&text).unwrap(), 2);
    }

    #[test]
    fn non_monotone_iterations_are_rejected() {
        let text = format!(
            "{}\n{}\n",
            render_line(&sample(2), None, None),
            render_line(&sample(2), None, None),
        );
        let err = validate_journal(&text).unwrap_err();
        assert!(err.contains("not greater"), "{err}");
    }

    #[test]
    fn independent_chains_have_independent_monotonicity() {
        let a = sample(5);
        let mut b = sample(3);
        b.chain = 1;
        let text = format!(
            "{}\n{}\n",
            render_line(&a, None, None),
            render_line(&b, None, None)
        );
        assert_eq!(validate_journal(&text).unwrap(), 2);
    }

    #[test]
    fn schema_violations_are_caught() {
        let bad = r#"{"schema":"coopmc-journal/1","chain":0,"iteration":1}"#;
        let v = crate::json::parse(bad).unwrap();
        assert!(validate_line(&v).is_err());
        let wrong_schema = r#"{"schema":"other/9"}"#;
        let v = crate::json::parse(wrong_schema).unwrap();
        assert!(validate_line(&v).unwrap_err().contains("schema"));
    }

    #[test]
    fn bad_utilization_is_rejected() {
        let mut s = sample(1);
        s.colors[0].utilization = 1.5;
        let v = crate::json::parse(&render_line(&s, None, None)).unwrap();
        assert!(validate_line(&v).unwrap_err().contains("utilization"));
    }

    #[test]
    fn empty_journal_is_an_error() {
        assert!(validate_journal("\n\n").is_err());
    }

    fn health(iter: u64) -> HealthRecord {
        HealthRecord {
            chain: 0,
            iteration: iter,
            samples: iter + 63,
            window: 64,
            mean: -10.0,
            variance: 2.5,
            ess: Some(12.5),
            rhat: Some(1.02),
            rhat_split: Some(0.997),
            mcse: Some(0.45),
            flip_rate: 0.31,
            events_stuck: 0,
            events_drift: 1,
            events_fallback: 0,
        }
    }

    #[test]
    fn health_lines_render_and_validate_interleaved() {
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            render_line(&sample(1), None, None),
            render_line(&sample(2), Some(3.4), Some(1.01)),
            render_health_line(&health(2)),
            render_health_line(&health(4)),
        );
        assert_eq!(validate_journal(&text).unwrap(), 4);
    }

    #[test]
    fn health_line_iterations_are_monotone_per_chain() {
        let text = format!(
            "{}\n{}\n",
            render_health_line(&health(5)),
            render_health_line(&health(5)),
        );
        assert!(validate_journal(&text).unwrap_err().contains("not greater"));
    }

    #[test]
    fn out_of_range_health_diagnostics_are_rejected() {
        // Rank-normalized R-hat below 1 is impossible.
        let mut h = health(3);
        h.rhat = Some(0.95);
        let v = crate::json::parse(&render_health_line(&h)).unwrap();
        assert!(validate_health_line(&v).unwrap_err().contains("rhat"));
        // Negative ESS.
        let mut h = health(3);
        h.ess = Some(-2.0);
        let v = crate::json::parse(&render_health_line(&h)).unwrap();
        assert!(validate_health_line(&v).unwrap_err().contains("ess"));
        // ESS exceeding the window it was computed from.
        let mut h = health(300);
        h.ess = Some(1000.0);
        let v = crate::json::parse(&render_health_line(&h)).unwrap();
        assert!(validate_health_line(&v).unwrap_err().contains("exceeds"));
        // The classic split estimator may legitimately dip below 1.
        let v = crate::json::parse(&render_health_line(&health(3))).unwrap();
        validate_health_line(&v).expect("rhat_split < 1 is allowed");
    }

    fn profile(kernel: &'static str, phase: &'static str) -> ProfileSample {
        ProfileSample {
            chain: 0,
            worker: 1,
            kernel,
            phase,
            calls: 12,
            total_ns: 5000,
            self_ns: 4200,
            modeled_cycles: 640,
            spans_dropped: 0,
            unclosed: 0,
        }
    }

    #[test]
    fn profile_lines_render_validate_and_interleave() {
        let text = format!(
            "{}\n{}\n{}\n",
            render_line(&sample(1), None, None),
            render_profile_line(&profile("pg.exp_batch", "pg")),
            render_profile_line(&profile("sd.sample_rows", "sd")),
        );
        assert_eq!(validate_journal(&text).unwrap(), 3);
    }

    #[test]
    fn profile_self_exceeding_total_is_rejected() {
        let mut p = profile("pu.update", "pu");
        p.self_ns = p.total_ns + 1;
        let v = crate::json::parse(&render_profile_line(&p)).unwrap();
        let err = validate_profile_line(&v).unwrap_err();
        assert!(err.contains("self-time"), "{err}");
    }

    #[test]
    fn profile_unknown_kernel_is_rejected() {
        let p = profile("pg.bogus", "pg");
        let v = crate::json::parse(&render_profile_line(&p)).unwrap();
        let err = validate_profile_line(&v).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
    }

    #[test]
    fn profile_phase_mismatch_is_rejected() {
        let p = profile("pg.dynorm", "sd");
        let v = crate::json::parse(&render_profile_line(&p)).unwrap();
        let err = validate_profile_line(&v).unwrap_err();
        assert!(err.contains("phase"), "{err}");
    }

    #[test]
    fn profile_imbalance_and_negative_durations_are_rejected() {
        let mut p = profile("sweep", "root");
        p.unclosed = 2;
        let v = crate::json::parse(&render_profile_line(&p)).unwrap();
        let err = validate_profile_line(&v).unwrap_err();
        assert!(err.contains("span-stack imbalance"), "{err}");

        let line = render_profile_line(&profile("sweep", "root")).replace("5000", "-5000");
        let v = crate::json::parse(&line).unwrap();
        let err = validate_profile_line(&v).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn health_diagnostics_may_be_null_while_warming_up() {
        let mut h = health(1);
        h.ess = None;
        h.rhat = None;
        h.rhat_split = None;
        h.mcse = None;
        let v = crate::json::parse(&render_health_line(&h)).unwrap();
        validate_health_line(&v).unwrap();
    }
}
