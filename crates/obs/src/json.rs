//! A minimal JSON writer and recursive-descent parser.
//!
//! The build container is offline, so the observability layer carries its
//! own JSON support: just enough writer to emit journal/trace records, and
//! just enough parser for the self-check binary and tests to validate them.
//! Numbers are `f64`; no streaming; inputs are expected to be machine
//! generated (the journal itself), not adversarial.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string in this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array in this value, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse a complete JSON document.
///
/// Returns an error describing the first offending byte offset on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf8".to_owned())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "invalid utf8".to_owned())?,
                            16,
                        )
                        .map_err(|_| "invalid \\u escape".to_owned())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (the input is valid UTF-8: it
                // came from a &str).
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(
                    std::str::from_utf8(&s[..ch_len]).map_err(|_| "invalid utf8".to_owned())?,
                );
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number to `out`; non-finite values render as `null`.
pub fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Append an optional number (`null` when absent or non-finite).
pub fn write_opt_num(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => write_num(out, v),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Value::Bool(true));
        assert!(arr[1].is_null());
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_num(), Some(-2e3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn writer_and_parser_round_trip() {
        let mut s = String::from("{");
        write_str(&mut s, "k\"ey");
        s.push(':');
        write_num(&mut s, 2.25);
        s.push(',');
        write_str(&mut s, "n");
        s.push(':');
        write_opt_num(&mut s, None);
        s.push('}');
        let v = parse(&s).unwrap();
        assert_eq!(v.get("k\"ey").unwrap().as_num(), Some(2.25));
        assert!(v.get("n").unwrap().is_null());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut s = String::new();
        write_num(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn unicode_strings_survive() {
        let v = parse("\"größe→λ\"").unwrap();
        assert_eq!(v.as_str(), Some("größe→λ"));
    }
}
