//! `coopmc-obs`: zero-overhead tracing, phase-level metrics and the
//! per-chain run journal for the CoopMC reproduction.
//!
//! Three layers, all `std`-only (the build container is offline):
//!
//! 1. **Metrics** ([`metrics`]) — relaxed-atomic counters, gauges and
//!    histograms behind a process-global registry with Prometheus-style
//!    text exposition.
//! 2. **Tracing** ([`trace`]) — a [`Recorder`] trait whose disabled form,
//!    [`NoopRecorder`], is statically dispatched into nothing; the engines
//!    are generic over it, so the warm-sweep zero-allocation guarantee from
//!    the perf work survives instrumentation and is proved by the
//!    counting-allocator test in `coopmc-core`.
//! 3. **Journal** ([`journal`]) — one JSONL record per sweep per chain
//!    (`coopmc-journal/1`), carrying the Table II phase split in wall time
//!    and modeled cycles, DyNorm/TableExp telemetry, chain-quality
//!    statistics and worker-pool utilization, plus a Chrome-trace export
//!    of spans for `chrome://tracing`.
//!
//! The `coopmc-obs-check` binary validates a journal file against the
//! schema; CI runs it on a freshly traced chain.

pub mod health;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod trace;

pub use health::{
    ChainHealth, ConvergenceController, Decision, EarlyStop, HealthConfig, HealthEvent,
    HealthEventKind, HealthRecord, NoControl, StopInfo,
};
pub use journal::{ColorSample, SweepSample, HEALTH_SCHEMA, SCHEMA};
pub use metrics::{counter, counter_with, gauge, gauge_with, histogram, log2_buckets, render};
pub use trace::{NoopRecorder, Recorder, TraceRecorder};
