//! `coopmc-obs`: zero-overhead tracing, phase-level metrics and the
//! per-chain run journal for the CoopMC reproduction.
//!
//! Three layers, all `std`-only (the build container is offline):
//!
//! 1. **Metrics** ([`metrics`]) — relaxed-atomic counters, gauges and
//!    histograms behind a process-global registry with Prometheus-style
//!    text exposition.
//! 2. **Tracing** ([`trace`]) — a [`Recorder`] trait whose disabled form,
//!    [`NoopRecorder`], is statically dispatched into nothing; the engines
//!    are generic over it, so the warm-sweep zero-allocation guarantee from
//!    the perf work survives instrumentation and is proved by the
//!    counting-allocator test in `coopmc-core`.
//! 3. **Journal** ([`journal`]) — one JSONL record per sweep per chain
//!    (`coopmc-journal/1`), carrying the Table II phase split in wall time
//!    and modeled cycles, DyNorm/TableExp telemetry, chain-quality
//!    statistics and worker-pool utilization, plus a Chrome-trace export
//!    of spans for `chrome://tracing`.
//!
//! 4. **Profiling** ([`profile`]) — a hierarchical kernel-span profiler
//!    ([`SpanProfiler`]) behind the same static-dispatch `prof_*` hooks,
//!    with fixed-capacity per-worker span rings, per-`(lane, kernel)`
//!    self/total attribution and modeled-cycle tallies, exported as
//!    collapsed-stack flamegraph text, a `coopmc-profile/1` journal
//!    section and Chrome-trace span merges.
//!
//! The `coopmc-obs-check` binary validates a journal file against the
//! schemas; CI runs it on a freshly traced chain.

pub mod health;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use health::{
    ChainHealth, ConvergenceController, Decision, EarlyStop, HealthConfig, HealthEvent,
    HealthEventKind, HealthRecord, NoControl, StopInfo,
};
pub use journal::{ColorSample, ProfileSample, SweepSample, HEALTH_SCHEMA, PROFILE_SCHEMA, SCHEMA};
pub use metrics::{
    counter, counter_with, describe, gauge, gauge_with, histogram, log2_buckets, render,
};
pub use profile::{Kernel, KernelReport, Profiled, SpanProfiler};
pub use trace::{NoopRecorder, Recorder, TraceRecorder};
