//! Relaxed-atomic counters, gauges and histograms with a process-global
//! registry and Prometheus-style text exposition.
//!
//! Hot paths hold `&'static` handles obtained once from the registry
//! ([`counter`], [`gauge`], [`histogram`]); every subsequent update is a
//! single relaxed atomic operation — no locks, no allocation. The registry
//! itself is only locked at registration and exposition time, both of which
//! happen off the sampling hot path.
//!
//! Metric identity is `name` plus an ordered label set, mirroring the
//! Prometheus data model: `coopmc_pool_worker_busy_ns{worker="3"}`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A detached counter (use the registry functions for exposition).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as raw bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A detached gauge initialized to `0.0`.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, caller-supplied bucket upper bounds plus the
/// implicit `+Inf` bucket, tracking count and sum like Prometheus.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Box<[f64]>,
    /// One cumulative-style slot per finite bound plus the `+Inf` slot.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observations, accumulated as `f64` bits via compare-exchange.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Build a histogram with the given finite bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket raw (non-cumulative) counts, one per finite bound plus
    /// the `+Inf` bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The registered metric kinds.
#[derive(Debug)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Metric identity: name plus ordered label pairs.
type Key = (String, Vec<(String, String)>);

/// A set of named metrics with Prometheus text exposition.
///
/// Usually accessed through the process-global instance via the
/// free functions [`counter`] / [`gauge`] / [`histogram`] / [`render`];
/// separate registries exist only for tests.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
    /// Per-family `# HELP` text, keyed by metric name.
    helps: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> &'static Counter {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric '{name}' already registered with another kind"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> &'static Gauge {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric '{name}' already registered with another kind"),
        }
    }

    /// Get or create the histogram `name{labels}` with `bounds` (ignored if
    /// the histogram already exists).
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> &'static Histogram {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(key_of(name, labels))
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric '{name}' already registered with another kind"),
        }
    }

    /// Attach `# HELP` text to the metric family `name`, emitted once per
    /// family by [`Registry::render`]. Later calls overwrite earlier ones.
    pub fn describe(&self, name: &str, help: &str) {
        self.helps
            .lock()
            .unwrap()
            .insert(name.to_owned(), help.to_owned());
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format. `# HELP` (when described) and `# TYPE` headers are emitted
    /// exactly once per metric family, followed by one sample line per
    /// series; label values are escaped per the exposition format
    /// (`\` → `\\`, `"` → `\"`, newline → `\n`).
    pub fn render(&self) -> String {
        let map = self.metrics.lock().unwrap();
        let helps = self.helps.lock().unwrap();
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), metric) in map.iter() {
            if name != last_name {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                if let Some(help) = helps.get(name) {
                    out.push_str(&format!(
                        "# HELP {name} {}\n",
                        help.replace('\\', "\\\\").replace('\n', "\\n")
                    ));
                }
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = name;
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", name, render_labels(labels), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{}{} {}\n", name, render_labels(labels), g.get()));
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < h.bounds.len() {
                            format!("{}", h.bounds[i])
                        } else {
                            "+Inf".to_owned()
                        };
                        let mut with_le: Vec<(String, String)> = labels.clone();
                        with_le.push(("le".to_owned(), le));
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            name,
                            render_labels(&with_le),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        name,
                        render_labels(labels),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        name,
                        render_labels(labels),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> Key {
    (
        name.to_owned(),
        labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect(),
    )
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The process-global registry behind [`counter`] / [`gauge`] /
/// [`histogram`] / [`render`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get or create a label-free counter in the global registry.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name, &[])
}

/// Get or create a labelled counter in the global registry.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> &'static Counter {
    global().counter(name, labels)
}

/// Get or create a label-free gauge in the global registry.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name, &[])
}

/// Get or create a labelled gauge in the global registry.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> &'static Gauge {
    global().gauge(name, labels)
}

/// Get or create a label-free histogram in the global registry.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    global().histogram(name, &[], bounds)
}

/// Attach `# HELP` text to a metric family in the global registry.
pub fn describe(name: &str, help: &str) {
    global().describe(name, help)
}

/// Render the global registry in the Prometheus text format.
pub fn render() -> String {
    global().render()
}

/// Fixed power-of-two histogram bounds `2^lo, 2^(lo+1), …, 2^hi` —
/// logarithmic coverage for latency-style distributions where one linear
/// bucket width can't span microseconds to seconds.
///
/// # Panics
///
/// Panics unless `lo < hi`.
pub fn log2_buckets(lo: i32, hi: i32) -> Vec<f64> {
    assert!(lo < hi, "log2 bucket range must be non-empty");
    (lo..=hi).map(|p| (p as f64).exp2()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("test_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("test_level", &[("shard", "a")]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let text = r.render();
        assert!(text.contains("# TYPE test_total counter"));
        assert!(text.contains("test_total 5"));
        assert!(text.contains("test_level{shard=\"a\"} 2.5"));
    }

    #[test]
    fn repeated_registration_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("same", &[]);
        a.add(3);
        let b = r.counter("same", &[]);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let r = Registry::new();
        let h = r.histogram("lat", &[], &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 560.5).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        let text = r.render();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"10\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_count 5"));
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        let _ = r.counter("conflict", &[]);
        let _ = r.gauge("conflict", &[]);
    }

    #[test]
    fn histogram_edge_values_land_in_the_le_bucket() {
        // Prometheus buckets are `v <= bound`: a value exactly on a bound
        // belongs to that bound's bucket, not the next one.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [1.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 0]);
        // Just past an edge spills into the next bucket.
        h.observe(1.0000000001);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 0]);
    }

    #[test]
    fn histogram_underflow_and_overflow_buckets() {
        let h = Histogram::new(&[10.0, 100.0]);
        // Below every bound (including negative and zero): first bucket.
        h.observe(-5.0);
        h.observe(0.0);
        h.observe(9.9);
        // Above every bound: the +Inf bucket.
        h.observe(101.0);
        h.observe(f64::MAX);
        assert_eq!(h.bucket_counts(), vec![3, 0, 2]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_le_exposition_is_cumulative_and_ordered() {
        let r = Registry::new();
        let h = r.histogram("edges", &[], &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 2.0, 3.0, 8.0] {
            h.observe(v);
        }
        let text = r.render();
        // `le` lines appear in ascending bound order, ending at +Inf, with
        // cumulative counts.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("edges_bucket"))
            .collect();
        assert_eq!(
            lines,
            vec![
                "edges_bucket{le=\"1\"} 2",
                "edges_bucket{le=\"2\"} 3",
                "edges_bucket{le=\"4\"} 4",
                "edges_bucket{le=\"+Inf\"} 5",
            ]
        );
        assert!(text.contains("edges_count 5"));
    }

    #[test]
    fn log2_buckets_are_exact_powers_and_strictly_increasing() {
        let b = log2_buckets(0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        let wide = log2_buckets(-2, 20);
        assert_eq!(wide[0], 0.25);
        assert_eq!(*wide.last().unwrap(), 1_048_576.0);
        assert!(wide.windows(2).all(|w| w[0] < w[1]));
        // Power-of-two values sit exactly on their own edge bucket.
        let h = Histogram::new(&log2_buckets(0, 3));
        h.observe(4.0);
        assert_eq!(h.bucket_counts(), vec![0, 0, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn log2_buckets_reject_empty_range() {
        let _ = log2_buckets(3, 3);
    }

    #[test]
    fn label_sets_are_distinct_series() {
        let r = Registry::new();
        r.counter("c", &[("w", "0")]).add(1);
        r.counter("c", &[("w", "1")]).add(2);
        let text = r.render();
        assert!(text.contains("c{w=\"0\"} 1"));
        assert!(text.contains("c{w=\"1\"} 2"));
        // One TYPE header for both series.
        assert_eq!(text.matches("# TYPE c counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("esc", &[("path", "a\\b\"c\nd")]).add(1);
        let text = r.render();
        assert!(
            text.contains(r#"esc{path="a\\b\"c\nd"} 1"#),
            "escaped series line missing in:\n{text}"
        );
        // The raw newline must never reach the exposition output: every
        // sample stays on one physical line.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "sample split across lines: {line:?}"
            );
        }
    }

    #[test]
    fn help_and_type_are_emitted_exactly_once_per_family() {
        let r = Registry::new();
        r.describe("fam", "counts things\nacross lines \\ with escapes");
        r.counter("fam", &[("w", "0")]).add(1);
        r.counter("fam", &[("w", "1")]).add(2);
        r.gauge("other", &[]).set(1.0);
        let text = r.render();
        assert_eq!(
            text.matches("# HELP fam counts things\\nacross lines \\\\ with escapes")
                .count(),
            1,
            "HELP must appear exactly once, escaped:\n{text}"
        );
        assert_eq!(text.matches("# TYPE fam counter").count(), 1);
        // Families without a description get no HELP line at all.
        assert_eq!(text.matches("# HELP other").count(), 0);
        assert_eq!(text.matches("# TYPE other gauge").count(), 1);
        // HELP precedes TYPE for the described family.
        let help_at = text.find("# HELP fam").unwrap();
        let type_at = text.find("# TYPE fam").unwrap();
        assert!(help_at < type_at);
    }
}
