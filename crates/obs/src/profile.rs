//! Kernel-level cycle-attribution profiler.
//!
//! [`SpanProfiler`] is a hierarchical span profiler with fixed-capacity
//! per-worker span rings. It is wired into the engines through the
//! `prof_*` hooks on [`Recorder`], which — like the tracing hooks — are
//! statically dispatched: the [`NoopRecorder`](crate::trace::NoopRecorder)
//! defaults fold to nothing, so the warm-sweep zero-allocation guarantee
//! and chain bit-identity survive (both are pinned by tests in
//! `coopmc-core` and the workspace `tests/profiling.rs`).
//!
//! The span vocabulary is closed: every instrumented site names a
//! [`Kernel`], so exports (collapsed-stack flamegraph text, the
//! `coopmc-profile/1` journal section, Chrome-trace merge) and the
//! `coopmc_hw` divergence ledger all share one spelling of each kernel.
//!
//! Recording is allocation-free after construction: each lane owns a
//! preallocated ring of [`RingSpan`]s (spans past capacity are counted in
//! `spans_dropped`, aggregates keep accumulating), a fixed-depth span
//! stack (imbalance is counted in `unclosed`, never panics), and a
//! fixed-size per-kernel aggregate table. Modeled cycles are attributed
//! per `(lane, kernel)` through relaxed atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::health::HealthRecord;
use crate::journal::{render_profile_line, ProfileSample};
use crate::trace::Recorder;
use crate::SweepSample;

/// Maximum nesting depth of open spans per lane. The engine vocabulary
/// nests at most two deep (`sweep` → kernel leaf); extra headroom keeps
/// future instrumentation from silently truncating.
pub const MAX_DEPTH: usize = 8;

/// Per-lane span-ring capacity. At ~24 bytes per span this is ~192 KiB
/// per lane; past capacity aggregates keep counting and `spans_dropped`
/// records the loss.
pub const RING_CAPACITY: usize = 8192;

/// The closed kernel vocabulary of the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Kernel {
    /// Whole-sweep root span on the coordinator lane.
    Sweep = 0,
    /// Host-side score gather (`model.scores_into`) feeding the PG core.
    PgGather = 1,
    /// PG stage 1: accumulator-bus arithmetic / requantization into the
    /// accumulator format (the normalization bus of the paper's PG core).
    PgNormalize = 2,
    /// PG stage 2: DyNorm max-shift (NormTree comparators).
    PgDynorm = 3,
    /// PG stage 3: TableExp lookup / exp evaluation.
    PgExpBatch = 4,
    /// Sample-unit draws (tree walk), batched or scalar.
    SdSampleRows = 5,
    /// Parameter-update commit (`model.update`).
    PuUpdate = 6,
    /// Worker-pool job dispatch (send side).
    PoolDispatch = 7,
    /// Worker-pool ack barrier (join side).
    PoolJoin = 8,
}

/// Number of kernels in the vocabulary.
pub const N_KERNELS: usize = 9;

/// All kernels, in discriminant order.
pub const KERNELS: [Kernel; N_KERNELS] = [
    Kernel::Sweep,
    Kernel::PgGather,
    Kernel::PgNormalize,
    Kernel::PgDynorm,
    Kernel::PgExpBatch,
    Kernel::SdSampleRows,
    Kernel::PuUpdate,
    Kernel::PoolDispatch,
    Kernel::PoolJoin,
];

impl Kernel {
    /// Stable wire name used in flamegraphs, journals and traces.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Sweep => "sweep",
            Kernel::PgGather => "pg.gather",
            Kernel::PgNormalize => "pg.normalize",
            Kernel::PgDynorm => "pg.dynorm",
            Kernel::PgExpBatch => "pg.exp_batch",
            Kernel::SdSampleRows => "sd.sample_rows",
            Kernel::PuUpdate => "pu.update",
            Kernel::PoolDispatch => "pool.dispatch",
            Kernel::PoolJoin => "pool.join",
        }
    }

    /// Paper phase the kernel belongs to (`root`, `pg`, `sd`, `pu`, `pool`).
    pub fn phase(self) -> &'static str {
        match self {
            Kernel::Sweep => "root",
            Kernel::PgGather | Kernel::PgNormalize | Kernel::PgDynorm | Kernel::PgExpBatch => "pg",
            Kernel::SdSampleRows => "sd",
            Kernel::PuUpdate => "pu",
            Kernel::PoolDispatch | Kernel::PoolJoin => "pool",
        }
    }

    /// Inverse of [`Kernel::name`]; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Kernel> {
        KERNELS.iter().copied().find(|k| k.name() == name)
    }

    fn from_u8(v: u8) -> Kernel {
        KERNELS[v as usize]
    }
}

/// One completed span in a lane's fixed-capacity ring.
#[derive(Debug, Clone, Copy)]
pub struct RingSpan {
    /// Kernel discriminant ([`Kernel::from_u8`] order).
    kernel: u8,
    /// Nesting depth at close time (0 = root).
    depth: u8,
    /// Start, nanoseconds since the profiler epoch.
    start_ns: u64,
    /// Duration in nanoseconds.
    dur_ns: u64,
}

impl RingSpan {
    /// Kernel the span belongs to.
    pub fn kernel(&self) -> Kernel {
        Kernel::from_u8(self.kernel)
    }

    /// Nesting depth at close time (0 = root).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Start, nanoseconds since the profiler epoch.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.dur_ns
    }
}

/// Per-kernel running aggregate inside a lane.
#[derive(Debug, Clone, Copy, Default)]
struct KernelAgg {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
}

/// One open frame on a lane's span stack.
#[derive(Debug, Clone, Copy, Default)]
struct Frame {
    kernel: u8,
    start_ns: u64,
    child_ns: u64,
}

/// Mutable per-lane state; one `Mutex<Lane>` per worker lane so workers
/// never contend with each other.
#[derive(Debug)]
struct Lane {
    stack: [Frame; MAX_DEPTH],
    depth: usize,
    unclosed: u64,
    dropped: u64,
    ring: Vec<RingSpan>,
    agg: [KernelAgg; N_KERNELS],
}

impl Lane {
    fn new() -> Lane {
        Lane {
            stack: [Frame::default(); MAX_DEPTH],
            depth: 0,
            unclosed: 0,
            dropped: 0,
            ring: Vec::with_capacity(RING_CAPACITY),
            agg: [KernelAgg::default(); N_KERNELS],
        }
    }

    fn record_closed(&mut self, kernel: u8, start_ns: u64, dur_ns: u64, child_ns: u64) {
        let agg = &mut self.agg[kernel as usize];
        agg.calls += 1;
        agg.total_ns += dur_ns;
        agg.child_ns += child_ns;
        if self.depth > 0 {
            self.stack[self.depth - 1].child_ns += dur_ns;
        }
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(RingSpan {
                kernel,
                depth: self.depth as u8,
                start_ns,
                dur_ns,
            });
        } else {
            self.dropped += 1;
        }
    }
}

/// Self/total attribution for one `(worker lane, kernel)` pair, plus the
/// lane's loss counters. `modeled_cycles` is the closed-form hardware cost
/// attributed to the same pair by the engines (see `coopmc_hw`).
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Lane index: 0 is the coordinator, `i > 0` is pool worker `i - 1`.
    pub worker: usize,
    /// Kernel the row describes.
    pub kernel: Kernel,
    /// Number of closed spans.
    pub calls: u64,
    /// Inclusive wall time, nanoseconds.
    pub total_ns: u64,
    /// Exclusive wall time (total minus attributed children), nanoseconds.
    pub self_ns: u64,
    /// Modeled hardware cycles attributed to this `(lane, kernel)`.
    pub modeled_cycles: u64,
    /// Spans lost to ring capacity on this lane (aggregates still count).
    pub spans_dropped: u64,
    /// Span-stack imbalance events on this lane (begin/end mismatch or
    /// still-open frames at export). Zero on a healthy run.
    pub unclosed: u64,
}

/// Hierarchical kernel-span profiler with fixed-capacity per-lane rings.
///
/// Lane 0 is the coordinator (the thread driving sweeps); lanes `1..=n`
/// are pool workers. Out-of-range lane indices clamp to the last lane
/// rather than panic.
#[derive(Debug)]
pub struct SpanProfiler {
    epoch: Instant,
    lanes: Vec<Mutex<Lane>>,
    cycles: Vec<[AtomicU64; N_KERNELS]>,
}

impl SpanProfiler {
    /// Create a profiler with `lanes` lanes (coordinator + workers).
    /// All ring/stack/aggregate storage is allocated here; recording
    /// never allocates.
    pub fn new(lanes: usize) -> SpanProfiler {
        let n = lanes.max(1);
        SpanProfiler {
            epoch: Instant::now(),
            lanes: (0..n).map(|_| Mutex::new(Lane::new())).collect(),
            cycles: (0..n)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Number of lanes (coordinator + workers).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds since the profiler epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lane(&self, lane: usize) -> &Mutex<Lane> {
        &self.lanes[lane.min(self.lanes.len() - 1)]
    }

    /// Open a span for `kernel` on `lane`.
    pub fn begin(&self, lane: usize, kernel: Kernel) {
        let now = self.now_ns();
        let mut lane = self.lane(lane).lock().expect("profiler lane poisoned");
        if lane.depth == MAX_DEPTH {
            lane.unclosed += 1;
            return;
        }
        let depth = lane.depth;
        lane.stack[depth] = Frame {
            kernel: kernel as u8,
            start_ns: now,
            child_ns: 0,
        };
        lane.depth += 1;
    }

    /// Close the innermost span on `lane`, which must be `kernel`; a
    /// mismatch or an empty stack counts as imbalance instead of closing.
    pub fn end(&self, lane: usize, kernel: Kernel) {
        let now = self.now_ns();
        let mut lane = self.lane(lane).lock().expect("profiler lane poisoned");
        if lane.depth == 0 || lane.stack[lane.depth - 1].kernel != kernel as u8 {
            lane.unclosed += 1;
            return;
        }
        lane.depth -= 1;
        let frame = lane.stack[lane.depth];
        let dur = now.saturating_sub(frame.start_ns);
        lane.record_closed(frame.kernel, frame.start_ns, dur, frame.child_ns);
    }

    /// Record an already-timed leaf span of `dur_ns` ending now.
    pub fn leaf(&self, lane: usize, kernel: Kernel, dur_ns: u64) {
        let now = self.now_ns();
        let mut lane = self.lane(lane).lock().expect("profiler lane poisoned");
        lane.record_closed(kernel as u8, now.saturating_sub(dur_ns), dur_ns, 0);
    }

    /// Attribute `cycles` modeled hardware cycles to `(lane, kernel)`.
    pub fn add_cycles(&self, lane: usize, kernel: Kernel, cycles: u64) {
        let lane = lane.min(self.cycles.len() - 1);
        self.cycles[lane][kernel as usize].fetch_add(cycles, Ordering::Relaxed);
    }

    /// Per-`(lane, kernel)` attribution rows, lane-major then kernel
    /// order; rows with zero calls and zero cycles are omitted.
    pub fn kernel_reports(&self) -> Vec<KernelReport> {
        let mut out = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            let lane = lane.lock().expect("profiler lane poisoned");
            let unclosed = lane.unclosed + lane.depth as u64;
            let lane_start = out.len();
            for kernel in KERNELS {
                let agg = lane.agg[kernel as usize];
                let cycles = self.cycles[i][kernel as usize].load(Ordering::Relaxed);
                if agg.calls == 0 && cycles == 0 {
                    continue;
                }
                out.push(KernelReport {
                    worker: i,
                    kernel,
                    calls: agg.calls,
                    total_ns: agg.total_ns,
                    self_ns: agg.total_ns.saturating_sub(agg.child_ns),
                    modeled_cycles: cycles,
                    spans_dropped: lane.dropped,
                    unclosed,
                });
            }
            // A lane with no completed spans must still surface its
            // damage counters, or an all-imbalanced run would validate.
            if out.len() == lane_start && (unclosed > 0 || lane.dropped > 0) {
                out.push(KernelReport {
                    worker: i,
                    kernel: Kernel::Sweep,
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                    modeled_cycles: 0,
                    spans_dropped: lane.dropped,
                    unclosed,
                });
            }
        }
        out
    }

    /// Collapsed-stack flamegraph text (`frame;frame count` per line,
    /// counts in nanoseconds of self time). Coordinator kernels nest
    /// under `sweep`; worker-lane kernels stack under `worker-<i>`.
    /// Root self time is included, so the per-line counts sum to the
    /// total inclusive sweep time.
    pub fn flamegraph(&self) -> String {
        let mut out = String::new();
        for report in self.kernel_reports() {
            if report.calls == 0 {
                continue;
            }
            let name = report.kernel.name();
            if report.worker == 0 {
                if report.kernel == Kernel::Sweep {
                    out.push_str(&format!("sweep {}\n", report.self_ns));
                } else {
                    out.push_str(&format!("sweep;{} {}\n", name, report.self_ns));
                }
            } else {
                out.push_str(&format!(
                    "worker-{};{} {}\n",
                    report.worker - 1,
                    name,
                    report.self_ns
                ));
            }
        }
        out
    }

    /// `coopmc-profile/1` journal section: one JSONL line per
    /// `(lane, kernel)` row, validated by `coopmc-obs-check`.
    pub fn journal_jsonl(&self, chain: u64) -> String {
        let mut out = String::new();
        for report in self.kernel_reports() {
            out.push_str(&render_profile_line(&ProfileSample {
                chain,
                worker: report.worker as u64,
                kernel: report.kernel.name(),
                phase: report.kernel.phase(),
                calls: report.calls,
                total_ns: report.total_ns,
                self_ns: report.self_ns,
                modeled_cycles: report.modeled_cycles,
                spans_dropped: report.spans_dropped,
                unclosed: report.unclosed,
            }));
            out.push('\n');
        }
        out
    }

    /// Snapshot of every retained ring span as
    /// `(lane, kernel, start_ns, dur_ns)`, for Chrome-trace merging.
    pub fn ring_spans(&self) -> Vec<(usize, Kernel, u64, u64)> {
        let mut out = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            let lane = lane.lock().expect("profiler lane poisoned");
            for span in &lane.ring {
                out.push((i, span.kernel(), span.start_ns, span.dur_ns));
            }
        }
        out
    }
}

impl Recorder for SpanProfiler {
    fn prof_enabled(&self) -> bool {
        true
    }

    fn prof_begin(&self, lane: usize, kernel: Kernel) {
        self.begin(lane, kernel);
    }

    fn prof_end(&self, lane: usize, kernel: Kernel) {
        self.end(lane, kernel);
    }

    fn prof_leaf(&self, lane: usize, kernel: Kernel, dur_ns: u64) {
        self.leaf(lane, kernel, dur_ns);
    }

    fn prof_cycles(&self, lane: usize, kernel: Kernel, cycles: u64) {
        self.add_cycles(lane, kernel, cycles);
    }
}

/// Recorder combinator that layers kernel profiling (routed to a
/// [`SpanProfiler`]) on top of any tracing recorder. `Copy` so the
/// engines can keep their by-value recorder plumbing.
#[derive(Debug, Clone, Copy)]
pub struct Profiled<'a, R> {
    inner: R,
    profiler: &'a SpanProfiler,
}

impl<'a, R: Recorder> Profiled<'a, R> {
    /// Layer `profiler` on top of `inner`.
    pub fn new(inner: R, profiler: &'a SpanProfiler) -> Profiled<'a, R> {
        Profiled { inner, profiler }
    }
}

impl<R: Recorder> Recorder for Profiled<'_, R> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn end_sweep(&self, sample: &SweepSample) {
        self.inner.end_sweep(sample);
    }

    fn observe_stat(&self, chain: u64, iteration: u64, stat: f64) {
        self.inner.observe_stat(chain, iteration, stat);
    }

    fn span(&self, name: &str, category: &str, start_ns: u64, dur_ns: u64, tid: u64) {
        self.inner.span(name, category, start_ns, dur_ns, tid);
    }

    fn event(&self, name: &str) {
        self.inner.event(name);
    }

    fn health(&self, record: &HealthRecord) {
        self.inner.health(record);
    }

    fn prof_enabled(&self) -> bool {
        true
    }

    fn prof_begin(&self, lane: usize, kernel: Kernel) {
        self.profiler.begin(lane, kernel);
    }

    fn prof_end(&self, lane: usize, kernel: Kernel) {
        self.profiler.end(lane, kernel);
    }

    fn prof_leaf(&self, lane: usize, kernel: Kernel, dur_ns: u64) {
        self.profiler.leaf(lane, kernel, dur_ns);
    }

    fn prof_cycles(&self, lane: usize, kernel: Kernel, cycles: u64) {
        self.profiler.add_cycles(lane, kernel, cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_round_trip() {
        for kernel in KERNELS {
            assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::from_name("pg.bogus"), None);
    }

    /// Spin until the profiler clock has advanced past `floor_ns`, so
    /// synthetic child durations can't exceed the real parent span.
    fn spin_past(prof: &SpanProfiler, floor_ns: u64) {
        let t0 = prof.now_ns();
        while prof.now_ns() - t0 < floor_ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        let prof = SpanProfiler::new(1);
        prof.begin(0, Kernel::Sweep);
        spin_past(&prof, 10_000);
        prof.leaf(0, Kernel::PuUpdate, 1_000);
        prof.leaf(0, Kernel::SdSampleRows, 2_000);
        prof.end(0, Kernel::Sweep);

        let reports = prof.kernel_reports();
        let sweep = reports
            .iter()
            .find(|r| r.kernel == Kernel::Sweep)
            .expect("sweep row");
        assert_eq!(sweep.calls, 1);
        assert_eq!(sweep.total_ns, sweep.self_ns + 3_000);
        assert_eq!(sweep.unclosed, 0);
        let pu = reports
            .iter()
            .find(|r| r.kernel == Kernel::PuUpdate)
            .expect("pu row");
        assert_eq!(pu.total_ns, 1_000);
        assert_eq!(pu.self_ns, 1_000);
    }

    #[test]
    fn flamegraph_self_times_sum_to_root_total() {
        let prof = SpanProfiler::new(1);
        prof.begin(0, Kernel::Sweep);
        spin_past(&prof, 10_000);
        prof.leaf(0, Kernel::PgExpBatch, 500);
        prof.leaf(0, Kernel::PuUpdate, 250);
        prof.end(0, Kernel::Sweep);

        let flame = prof.flamegraph();
        let mut sum = 0u64;
        for line in flame.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("collapsed-stack line");
            assert!(stack.starts_with("sweep"), "unexpected stack {stack:?}");
            sum += count.parse::<u64>().expect("numeric count");
        }
        let sweep_total = prof
            .kernel_reports()
            .iter()
            .find(|r| r.kernel == Kernel::Sweep)
            .expect("sweep row")
            .total_ns;
        assert_eq!(sum, sweep_total);
    }

    #[test]
    fn imbalance_is_counted_not_fatal() {
        let prof = SpanProfiler::new(1);
        prof.end(0, Kernel::Sweep); // end with empty stack
        prof.begin(0, Kernel::Sweep);
        prof.end(0, Kernel::PuUpdate); // mismatched close
        let reports = prof.kernel_reports();
        let sweep = reports
            .iter()
            .find(|r| r.kernel == Kernel::Sweep)
            .expect("open sweep still reported as unclosed");
        // 2 explicit imbalances + 1 still-open frame at export.
        assert_eq!(sweep.unclosed, 3);
    }

    #[test]
    fn ring_overflow_drops_spans_but_keeps_aggregates() {
        let prof = SpanProfiler::new(1);
        let n = (RING_CAPACITY + 10) as u64;
        for _ in 0..n {
            prof.leaf(0, Kernel::PuUpdate, 1);
        }
        let reports = prof.kernel_reports();
        let pu = reports
            .iter()
            .find(|r| r.kernel == Kernel::PuUpdate)
            .expect("pu row");
        assert_eq!(pu.calls, n);
        assert_eq!(pu.total_ns, n);
        assert_eq!(pu.spans_dropped, 10);
        assert_eq!(prof.ring_spans().len(), RING_CAPACITY);
    }

    #[test]
    fn worker_lanes_render_worker_stacks() {
        let prof = SpanProfiler::new(3);
        prof.leaf(2, Kernel::PgExpBatch, 123);
        let flame = prof.flamegraph();
        assert_eq!(flame, "worker-1;pg.exp_batch 123\n");
    }

    #[test]
    fn out_of_range_lane_clamps() {
        let prof = SpanProfiler::new(2);
        prof.leaf(99, Kernel::PuUpdate, 7);
        prof.add_cycles(99, Kernel::PuUpdate, 4);
        let reports = prof.kernel_reports();
        let row = reports
            .iter()
            .find(|r| r.kernel == Kernel::PuUpdate)
            .expect("clamped row");
        assert_eq!(row.worker, 1);
        assert_eq!(row.modeled_cycles, 4);
    }

    #[test]
    fn journal_lines_carry_the_profile_schema() {
        let prof = SpanProfiler::new(1);
        prof.begin(0, Kernel::Sweep);
        prof.leaf(0, Kernel::SdSampleRows, 10);
        prof.end(0, Kernel::Sweep);
        prof.add_cycles(0, Kernel::SdSampleRows, 5);
        let text = prof.journal_jsonl(0);
        assert!(text.contains("\"schema\":\"coopmc-profile/1\""));
        assert!(text.contains("\"kernel\":\"sd.sample_rows\""));
        assert!(text.contains("\"phase\":\"sd\""));
        crate::journal::validate_journal(&text).expect("profile journal validates");
    }
}
