//! The span/event tracing layer: a statically dispatched [`Recorder`]
//! abstraction whose disabled form compiles to nothing.
//!
//! The Gibbs engines are generic over `Rec: Recorder`. With the default
//! [`NoopRecorder`] every recorder call is an inlined empty function and
//! every `if recorder.enabled()` block is dead code the optimizer removes —
//! which is how instrumentation coexists with the warm-sweep
//! **zero-allocation guarantee** (proved by the counting-allocator test in
//! `coopmc-core`). With a [`TraceRecorder`] the same call sites feed the
//! run journal, the global metrics registry and a Chrome-trace span log.
//!
//! Recorders are shared by reference (`&TraceRecorder` implements
//! `Recorder`), so the caller keeps ownership and can export the journal /
//! trace / metrics after the run.

use std::sync::Mutex;
use std::time::Instant;

use crate::health::{ChainHealth, HealthConfig, HealthRecord};
use crate::journal::{render_health_line, render_line, SweepSample};
use crate::metrics;
use crate::profile::Kernel;

/// A sink for sweep samples, spans and chain statistics.
///
/// All methods have empty default bodies; a no-op implementor compiles to
/// nothing under static dispatch. Implementors that actually record must
/// override [`Recorder::enabled`] to return `true` — instrumented code uses
/// it to skip aggregation work entirely when recording is off.
pub trait Recorder: Sync {
    /// Whether this recorder captures anything. Instrumented hot paths
    /// guard their aggregation behind this so a disabled recorder costs
    /// zero work (the branch is resolved at compile time).
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Nanoseconds since this recorder's epoch (0 when disabled).
    #[inline]
    fn now_ns(&self) -> u64 {
        0
    }

    /// Record one completed sweep.
    #[inline]
    fn end_sweep(&self, sample: &SweepSample) {
        let _ = sample;
    }

    /// Attach a model statistic (energy, log-likelihood, …) to a sweep.
    #[inline]
    fn observe_stat(&self, chain: u64, iteration: u64, stat: f64) {
        let _ = (chain, iteration, stat);
    }

    /// Record a completed span (Chrome-trace "X" event).
    #[inline]
    fn span(&self, name: &str, category: &str, start_ns: u64, dur_ns: u64, tid: u64) {
        let _ = (name, category, start_ns, dur_ns, tid);
    }

    /// Record an instantaneous event.
    #[inline]
    fn event(&self, name: &str) {
        let _ = name;
    }

    /// Record a refreshed chain-health snapshot (a `coopmc-health/1`
    /// journal line). Forwarded by the early-stop convergence controller
    /// whenever its diagnostics refresh.
    #[inline]
    fn health(&self, record: &HealthRecord) {
        let _ = record;
    }

    /// Whether kernel-level span profiling is on. Engines guard the extra
    /// per-kernel timing behind this, independently of [`Recorder::enabled`]
    /// (a run can profile without journaling and vice versa).
    #[inline]
    fn prof_enabled(&self) -> bool {
        false
    }

    /// Open a hierarchical kernel span on a worker lane.
    #[inline]
    fn prof_begin(&self, lane: usize, kernel: Kernel) {
        let _ = (lane, kernel);
    }

    /// Close the innermost kernel span on a worker lane.
    #[inline]
    fn prof_end(&self, lane: usize, kernel: Kernel) {
        let _ = (lane, kernel);
    }

    /// Record an already-timed leaf kernel span ending now.
    #[inline]
    fn prof_leaf(&self, lane: usize, kernel: Kernel, dur_ns: u64) {
        let _ = (lane, kernel, dur_ns);
    }

    /// Attribute modeled hardware cycles to `(lane, kernel)`.
    #[inline]
    fn prof_cycles(&self, lane: usize, kernel: Kernel, cycles: u64) {
        let _ = (lane, kernel, cycles);
    }
}

/// The zero-cost disabled recorder: every method is an inlined no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl<T: Recorder + ?Sized> Recorder for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }

    #[inline]
    fn end_sweep(&self, sample: &SweepSample) {
        (**self).end_sweep(sample)
    }

    #[inline]
    fn observe_stat(&self, chain: u64, iteration: u64, stat: f64) {
        (**self).observe_stat(chain, iteration, stat)
    }

    #[inline]
    fn span(&self, name: &str, category: &str, start_ns: u64, dur_ns: u64, tid: u64) {
        (**self).span(name, category, start_ns, dur_ns, tid)
    }

    #[inline]
    fn event(&self, name: &str) {
        (**self).event(name)
    }

    #[inline]
    fn health(&self, record: &HealthRecord) {
        (**self).health(record)
    }

    #[inline]
    fn prof_enabled(&self) -> bool {
        (**self).prof_enabled()
    }

    #[inline]
    fn prof_begin(&self, lane: usize, kernel: Kernel) {
        (**self).prof_begin(lane, kernel)
    }

    #[inline]
    fn prof_end(&self, lane: usize, kernel: Kernel) {
        (**self).prof_end(lane, kernel)
    }

    #[inline]
    fn prof_leaf(&self, lane: usize, kernel: Kernel, dur_ns: u64) {
        (**self).prof_leaf(lane, kernel, dur_ns)
    }

    #[inline]
    fn prof_cycles(&self, lane: usize, kernel: Kernel, cycles: u64) {
        (**self).prof_cycles(lane, kernel, cycles)
    }
}

/// One completed span for the Chrome-trace export.
#[derive(Debug, Clone, PartialEq)]
struct Span {
    name: String,
    category: String,
    start_ns: u64,
    dur_ns: u64,
    tid: u64,
}

#[derive(Debug, Default)]
struct TraceInner {
    sweeps: Vec<SweepSample>,
    spans: Vec<Span>,
    /// `(chain, iteration, stat)` observations, joined to sweeps on export.
    stats: Vec<(u64, u64, f64)>,
    events: Vec<(u64, String)>,
    /// Chain-health snapshots, interleaved into the journal on export.
    health: Vec<HealthRecord>,
}

/// The enabled recorder: captures sweep samples, spans and statistics in
/// memory and exports them as a JSONL journal, a Chrome-trace file and
/// global registry metrics.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    inner: Mutex<TraceInner>,
    m_sweeps: &'static metrics::Counter,
    m_updates: &'static metrics::Counter,
    m_flips: &'static metrics::Counter,
    m_fallbacks: &'static metrics::Counter,
    m_pg_ns: &'static metrics::Counter,
    m_sd_ns: &'static metrics::Counter,
    m_pu_ns: &'static metrics::Counter,
    m_pg_cycles: &'static metrics::Counter,
    m_sd_cycles: &'static metrics::Counter,
    m_pu_cycles: &'static metrics::Counter,
    h_sweep_us: &'static metrics::Histogram,
    h_pg_us: &'static metrics::Histogram,
    h_sd_us: &'static metrics::Histogram,
    h_pu_us: &'static metrics::Histogram,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A recorder whose epoch is *now*, pre-registering its metrics in the
    /// global registry so the recording hot path never allocates for them.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
            m_sweeps: metrics::counter("coopmc_sweeps_total"),
            m_updates: metrics::counter("coopmc_updates_total"),
            m_flips: metrics::counter("coopmc_label_flips_total"),
            m_fallbacks: metrics::counter("coopmc_uniform_fallbacks_total"),
            m_pg_ns: metrics::counter("coopmc_phase_pg_ns_total"),
            m_sd_ns: metrics::counter("coopmc_phase_sd_ns_total"),
            m_pu_ns: metrics::counter("coopmc_phase_pu_ns_total"),
            m_pg_cycles: metrics::counter("coopmc_modeled_pg_cycles_total"),
            m_sd_cycles: metrics::counter("coopmc_modeled_sd_cycles_total"),
            m_pu_cycles: metrics::counter("coopmc_modeled_pu_cycles_total"),
            h_sweep_us: metrics::histogram(
                "coopmc_sweep_duration_us",
                &[
                    10.0,
                    100.0,
                    1_000.0,
                    10_000.0,
                    100_000.0,
                    1_000_000.0,
                    10_000_000.0,
                ],
            ),
            // Per-phase latency histograms: fixed log2 buckets from 1 µs to
            // ~1 s so the Table II split is visible as a distribution, not
            // just a total.
            h_pg_us: metrics::histogram(
                "coopmc_phase_pg_duration_us",
                &metrics::log2_buckets(0, 20),
            ),
            h_sd_us: metrics::histogram(
                "coopmc_phase_sd_duration_us",
                &metrics::log2_buckets(0, 20),
            ),
            h_pu_us: metrics::histogram(
                "coopmc_phase_pu_duration_us",
                &metrics::log2_buckets(0, 20),
            ),
        }
    }

    /// The recorded sweep samples, in arrival order.
    pub fn sweeps(&self) -> Vec<SweepSample> {
        self.inner.lock().unwrap().sweeps.clone()
    }

    /// Render the run journal as JSONL, one line per sweep per chain, with
    /// any chain-health snapshots ([`Recorder::health`]) interleaved after
    /// the sweep they were refreshed at.
    ///
    /// Model statistics attached via [`Recorder::observe_stat`] are joined
    /// onto their sweeps; running ESS (≥ 4 samples) and split-chain
    /// Gelman–Rubin (≥ 8 samples) come from a per-chain incremental
    /// [`ChainHealth`] in export mode ([`HealthConfig::for_export`]), so
    /// export cost is linear in chain length instead of the quadratic
    /// full-series rescan this replaced. Per-line values are identical to
    /// the old rescan for chains up to the export window (4096 statistics);
    /// past that the diagnostics cover the trailing window only.
    pub fn journal_jsonl(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        // Per-chain incremental diagnostics, fed one statistic per line.
        let mut health: std::collections::BTreeMap<u64, ChainHealth> =
            std::collections::BTreeMap::new();
        // Health snapshots not yet emitted, in arrival order per chain.
        let mut pending: std::collections::BTreeMap<
            u64,
            std::collections::VecDeque<&HealthRecord>,
        > = std::collections::BTreeMap::new();
        for r in &inner.health {
            pending.entry(r.chain).or_default().push_back(r);
        }
        for s in &inner.sweeps {
            let stat = s.stat.or_else(|| {
                inner
                    .stats
                    .iter()
                    .find(|(c, it, _)| *c == s.chain && *it == s.iteration)
                    .map(|&(_, _, v)| v)
            });
            let (mut ess, mut rhat) = (None, None);
            if let Some(v) = stat {
                let h = health
                    .entry(s.chain)
                    .or_insert_with(|| ChainHealth::new(s.chain, HealthConfig::for_export()));
                h.observe_sweep(
                    s.iteration,
                    s.updates,
                    s.flips,
                    s.uniform_fallbacks,
                    Some(v),
                );
                ess = h.record().ess;
                rhat = h.record().rhat_split;
            }
            let mut line = s.clone();
            line.stat = stat;
            out.push_str(&render_line(&line, ess, rhat));
            out.push('\n');
            if let Some(queue) = pending.get_mut(&s.chain) {
                while queue.front().is_some_and(|r| r.iteration <= s.iteration) {
                    out.push_str(&render_health_line(queue.pop_front().unwrap()));
                    out.push('\n');
                }
            }
        }
        // Health records past the last recorded sweep of their chain (or on
        // chains with no sweep lines at all) flush at the end.
        for queue in pending.values_mut() {
            for r in queue.drain(..) {
                out.push_str(&render_health_line(r));
                out.push('\n');
            }
        }
        out
    }

    /// Render every recorded span (plus synthetic per-phase child spans of
    /// each sweep) as a Chrome-trace (`chrome://tracing` / Perfetto) JSON
    /// document.
    ///
    /// Phase spans are per-sweep aggregates laid out back-to-back inside
    /// their sweep span — their widths are exact, their internal order
    /// within the sweep is schematic (PG/SD/PU interleave per variable).
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut events = Vec::new();
        for s in &inner.sweeps {
            events.push(render_trace_event(
                &format!("sweep {}", s.iteration),
                "sweep",
                s.start_ns,
                s.wall_ns,
                s.chain,
            ));
            let mut cursor = s.start_ns;
            for (name, dur) in [("PG", s.pg_ns), ("SD", s.sd_ns), ("PU", s.pu_ns)] {
                events.push(render_trace_event(name, "phase", cursor, dur, s.chain));
                cursor += dur;
            }
        }
        for sp in &inner.spans {
            events.push(render_trace_event(
                &sp.name,
                &sp.category,
                sp.start_ns,
                sp.dur_ns,
                sp.tid,
            ));
        }
        for (ts, name) in &inner.events {
            events.push(format!(
                "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":0,\"s\":\"g\"}}",
                quoted(name),
                *ts as f64 / 1_000.0
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",")
        )
    }

    /// Number of recorded sweeps.
    pub fn sweep_count(&self) -> usize {
        self.inner.lock().unwrap().sweeps.len()
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::new();
    crate::json::write_str(&mut out, s);
    out
}

fn render_trace_event(name: &str, cat: &str, start_ns: u64, dur_ns: u64, tid: u64) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
        quoted(name),
        quoted(cat),
        start_ns as f64 / 1_000.0,
        dur_ns as f64 / 1_000.0,
        tid
    )
}

impl Recorder for TraceRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn end_sweep(&self, sample: &SweepSample) {
        self.m_sweeps.inc();
        self.m_updates.add(sample.updates);
        self.m_flips.add(sample.flips);
        self.m_fallbacks.add(sample.uniform_fallbacks);
        self.m_pg_ns.add(sample.pg_ns);
        self.m_sd_ns.add(sample.sd_ns);
        self.m_pu_ns.add(sample.pu_ns);
        self.m_pg_cycles.add(sample.pg_cycles);
        self.m_sd_cycles.add(sample.sd_cycles);
        self.m_pu_cycles.add(sample.pu_cycles);
        self.h_sweep_us.observe(sample.wall_ns as f64 / 1_000.0);
        self.h_pg_us.observe(sample.pg_ns as f64 / 1_000.0);
        self.h_sd_us.observe(sample.sd_ns as f64 / 1_000.0);
        self.h_pu_us.observe(sample.pu_ns as f64 / 1_000.0);
        self.inner.lock().unwrap().sweeps.push(sample.clone());
    }

    fn observe_stat(&self, chain: u64, iteration: u64, stat: f64) {
        self.inner
            .lock()
            .unwrap()
            .stats
            .push((chain, iteration, stat));
    }

    fn span(&self, name: &str, category: &str, start_ns: u64, dur_ns: u64, tid: u64) {
        self.inner.lock().unwrap().spans.push(Span {
            name: name.to_owned(),
            category: category.to_owned(),
            start_ns,
            dur_ns,
            tid,
        });
    }

    fn event(&self, name: &str) {
        let ts = self.now_ns();
        self.inner
            .lock()
            .unwrap()
            .events
            .push((ts, name.to_owned()));
    }

    fn health(&self, record: &HealthRecord) {
        self.inner.lock().unwrap().health.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::validate_journal;

    fn push_sweep(rec: &TraceRecorder, iteration: u64, stat: f64) {
        let sample = SweepSample {
            chain: 0,
            iteration,
            start_ns: iteration * 1_000,
            wall_ns: 800,
            updates: 16,
            flips: 4,
            uniform_fallbacks: 0,
            pg_ns: 400,
            sd_ns: 300,
            pu_ns: 100,
            pg_cycles: 160,
            sd_cycles: 80,
            pu_cycles: 64,
            pg_batches: 2,
            pg_batch_rows: 16,
            norm_max: Some(-0.5),
            exp_in_min: Some(-4.0),
            exp_in_max: Some(0.0),
            stat: None,
            colors: Vec::new(),
        };
        rec.observe_stat(0, iteration, stat);
        rec.end_sweep(&sample);
    }

    #[test]
    fn journal_has_running_diagnostics() {
        let rec = TraceRecorder::new();
        let mut x = 10.0;
        for it in 1..=12 {
            x = x * 0.9 + (it % 3) as f64;
            push_sweep(&rec, it, x);
        }
        let journal = rec.journal_jsonl();
        assert_eq!(validate_journal(&journal).unwrap(), 12);
        let lines: Vec<&str> = journal.lines().collect();
        let first = crate::json::parse(lines[0]).unwrap();
        assert!(first.get("ess").unwrap().is_null(), "too few samples yet");
        let last = crate::json::parse(lines[11]).unwrap();
        assert!(last.get("ess").unwrap().as_num().unwrap() > 0.0);
        assert!(last.get("rhat").unwrap().as_num().unwrap() > 0.0);
        assert_eq!(last.get("stat").unwrap().as_num(), Some(x));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_phase_spans() {
        let rec = TraceRecorder::new();
        push_sweep(&rec, 1, 1.0);
        rec.span("color 0", "pool", 100, 50, 3);
        rec.event("checkpoint");
        let doc = rec.chrome_trace_json();
        let v = crate::json::parse(&doc).expect("trace must parse");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 sweep + 3 phases + 1 span + 1 instant event.
        assert_eq!(events.len(), 6);
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"PG") && names.contains(&"SD") && names.contains(&"PU"));
        assert!(names.contains(&"color 0"));
        for e in events {
            if let Some(ph) = e.get("ph").and_then(crate::json::Value::as_str) {
                if ph == "X" {
                    assert!(e.get("dur").unwrap().as_num().unwrap() >= 0.0);
                }
            }
        }
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        assert_eq!(rec.now_ns(), 0);
        // Reference forwarding preserves enabled().
        let r = &TraceRecorder::new();
        assert!(Recorder::enabled(&r));
    }

    #[test]
    fn metrics_counters_accumulate() {
        let rec = TraceRecorder::new();
        let before = metrics::counter("coopmc_updates_total").get();
        push_sweep(&rec, 1, 0.0);
        push_sweep(&rec, 2, 0.0);
        assert_eq!(metrics::counter("coopmc_updates_total").get(), before + 32);
        assert!(metrics::render().contains("coopmc_sweep_duration_us_bucket"));
        assert!(metrics::render().contains("coopmc_phase_pg_duration_us_bucket"));
    }

    /// Pin: the incremental export diagnostics reproduce the full-series
    /// rescan this PR removed — `effective_sample_size` over the chain so
    /// far and split-chain `gelman_rubin` (odd-length tail dropped,
    /// non-finite dropped) — on a fixed smooth series.
    #[test]
    fn incremental_export_matches_the_old_full_series_rescan() {
        use coopmc_models::diagnostics::{effective_sample_size, gelman_rubin};
        let rec = TraceRecorder::new();
        let mut x = 5.0;
        let mut series = Vec::new();
        for it in 1..=40u64 {
            x = 0.7 * x + ((it * 2_654_435_761) % 97) as f64 / 97.0;
            series.push(x);
            push_sweep(&rec, it, x);
        }
        let journal = rec.journal_jsonl();
        for (i, line) in journal.lines().enumerate() {
            let v = crate::json::parse(line).unwrap();
            let n = i + 1;
            let want_ess = (n >= 4).then(|| effective_sample_size(&series[..n]));
            let want_rhat = (n >= 8)
                .then(|| {
                    let (a, b) = series[..n].split_at(n / 2);
                    gelman_rubin(&[a.to_vec(), b[..a.len()].to_vec()])
                })
                .filter(|r| r.is_finite());
            let got_ess = v.get("ess").unwrap().as_num();
            let got_rhat = v.get("rhat").unwrap().as_num();
            match (want_ess, got_ess) {
                (None, None) => {}
                (Some(w), Some(g)) => assert!((w - g).abs() < 1e-9, "line {n}: ess {g} vs {w}"),
                other => panic!("line {n}: ess mismatch {other:?}"),
            }
            match (want_rhat, got_rhat) {
                (None, None) => {}
                (Some(w), Some(g)) => assert!((w - g).abs() < 1e-9, "line {n}: rhat {g} vs {w}"),
                other => panic!("line {n}: rhat mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn health_records_interleave_after_their_sweep() {
        let rec = TraceRecorder::new();
        for it in 1..=4u64 {
            push_sweep(&rec, it, it as f64);
        }
        let mut r = HealthRecord {
            chain: 0,
            iteration: 2,
            samples: 2,
            window: 2,
            flip_rate: 0.25,
            ..HealthRecord::default()
        };
        Recorder::health(&rec, &r);
        r.iteration = 9; // past the last sweep: flushed at the end
        r.samples = 9;
        r.window = 9;
        Recorder::health(&rec, &r);
        let journal = rec.journal_jsonl();
        assert_eq!(validate_journal(&journal).unwrap(), 6);
        let schemas: Vec<String> = journal
            .lines()
            .map(|l| {
                crate::json::parse(l)
                    .unwrap()
                    .get("schema")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        assert_eq!(
            schemas,
            vec![
                "coopmc-journal/1",
                "coopmc-journal/1",
                "coopmc-health/1",
                "coopmc-journal/1",
                "coopmc-journal/1",
                "coopmc-health/1",
            ]
        );
    }
}
