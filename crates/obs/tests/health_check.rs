//! `coopmc-obs-check` end-to-end: the real binary accepts a journal whose
//! health lines are well-formed and rejects corrupted fixtures — out-of-range
//! diagnostics (R-hat below 1, negative ESS, ESS exceeding the window) and
//! non-monotone health iterations — with a pointed diagnostic on stderr.

use std::path::PathBuf;
use std::process::Command;

use coopmc_obs::health::HealthRecord;
use coopmc_obs::journal::render_health_line;

/// A well-formed health record `iter` sweeps in.
fn record(iter: u64) -> HealthRecord {
    HealthRecord {
        chain: 0,
        iteration: iter,
        samples: iter,
        window: iter.min(64),
        mean: 12.5,
        variance: 3.25,
        ess: Some(6.0),
        rhat: Some(1.021),
        rhat_split: Some(0.997),
        mcse: Some(0.74),
        flip_rate: 0.31,
        events_stuck: 0,
        events_drift: 1,
        events_fallback: 0,
    }
}

/// A valid two-line health journal.
fn valid_journal() -> String {
    format!(
        "{}\n{}\n",
        render_health_line(&record(8)),
        render_health_line(&record(16))
    )
}

/// Write `contents` to a uniquely named fixture file and return its path.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "coopmc-obs-check-{}-{name}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("fixture must be writable");
    path
}

/// Run the real `coopmc-obs-check` binary on `journal`, returning
/// (exit-success, stdout, stderr).
fn check(name: &str, journal: &str) -> (bool, String, String) {
    let path = fixture(name, journal);
    let out = Command::new(env!("CARGO_BIN_EXE_coopmc-obs-check"))
        .arg(&path)
        .output()
        .expect("coopmc-obs-check must run");
    let _ = std::fs::remove_file(&path);
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn valid_health_journal_passes() {
    let (ok, stdout, stderr) = check("valid", &valid_journal());
    assert!(ok, "valid journal rejected: {stderr}");
    assert!(stdout.contains("OK (2 journal lines)"), "stdout: {stdout}");
}

#[test]
fn rhat_below_one_fails_the_check() {
    let corrupted = valid_journal().replace("\"rhat\":1.021", "\"rhat\":0.92");
    assert_ne!(
        corrupted,
        valid_journal(),
        "corruption must hit the fixture"
    );
    let (ok, _, stderr) = check("low-rhat", &corrupted);
    assert!(!ok, "R-hat 0.92 must fail a rank-normalized health line");
    assert!(
        stderr.contains("INVALID") && stderr.contains("rhat"),
        "stderr: {stderr}"
    );
}

#[test]
fn negative_ess_fails_the_check() {
    let corrupted = valid_journal().replace("\"ess\":6", "\"ess\":-6");
    let (ok, _, stderr) = check("neg-ess", &corrupted);
    assert!(!ok, "negative ESS must fail");
    assert!(stderr.contains("ess"), "stderr: {stderr}");
}

#[test]
fn ess_beyond_the_window_fails_the_check() {
    // ESS is a sample count: it cannot exceed the samples in the window.
    let corrupted = valid_journal().replace("\"ess\":6", "\"ess\":4096");
    let (ok, _, stderr) = check("huge-ess", &corrupted);
    assert!(!ok, "ESS 4096 over a 16-sample window must fail");
    assert!(stderr.contains("ess"), "stderr: {stderr}");
}

#[test]
fn non_monotone_health_iterations_fail_the_check() {
    let backwards = format!(
        "{}\n{}\n",
        render_health_line(&record(16)),
        render_health_line(&record(8))
    );
    let (ok, _, stderr) = check("backwards", &backwards);
    assert!(
        !ok,
        "health iterations must be strictly increasing per chain"
    );
    assert!(stderr.contains("iteration"), "stderr: {stderr}");
}
