//! `coopmc-obs-check` end-to-end on `coopmc-profile/1` lines: the real
//! binary accepts a journal whose profile rows are well-formed (alone or
//! interleaved with sweep/health lines) and rejects corrupted fixtures —
//! unknown kernel names, self time exceeding total time, span-stack
//! imbalance, and negative counts — with a pointed diagnostic on stderr.

use std::path::PathBuf;
use std::process::Command;

use coopmc_obs::journal::render_profile_line;
use coopmc_obs::ProfileSample;

/// A well-formed profile row for `kernel` on lane `worker`.
fn sample(worker: u64, kernel: coopmc_obs::Kernel) -> ProfileSample {
    ProfileSample {
        chain: 0,
        worker,
        kernel: kernel.name(),
        phase: kernel.phase(),
        calls: 4,
        total_ns: 9000,
        self_ns: 7500,
        modeled_cycles: 1200,
        spans_dropped: 0,
        unclosed: 0,
    }
}

/// A valid profile journal covering the coordinator and one worker lane.
fn valid_journal() -> String {
    use coopmc_obs::Kernel;
    [
        sample(0, Kernel::Sweep),
        sample(0, Kernel::PuUpdate),
        sample(1, Kernel::PgGather),
        sample(1, Kernel::PgNormalize),
        sample(1, Kernel::SdSampleRows),
    ]
    .iter()
    .map(|s| render_profile_line(s) + "\n")
    .collect()
}

/// Write `contents` to a uniquely named fixture file and return its path.
fn fixture(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "coopmc-profile-check-{}-{name}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("fixture must be writable");
    path
}

/// Run the real `coopmc-obs-check` binary on `journal`, returning
/// (exit-success, stdout, stderr).
fn check(name: &str, journal: &str) -> (bool, String, String) {
    let path = fixture(name, journal);
    let out = Command::new(env!("CARGO_BIN_EXE_coopmc-obs-check"))
        .arg(&path)
        .output()
        .expect("coopmc-obs-check must run");
    let _ = std::fs::remove_file(&path);
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn accepts_a_valid_profile_journal() {
    let (ok, stdout, stderr) = check("valid", &valid_journal());
    assert!(ok, "valid profile journal must pass: {stderr}");
    assert!(stdout.contains("OK (5 journal lines)"), "{stdout}");
}

#[test]
fn accepts_profile_lines_interleaved_with_sweep_lines() {
    // A real `--journal-out` file mixes sweep samples and the appended
    // profile section; the checker must dispatch per line on `schema`.
    let sweep = "{\"schema\":\"coopmc-journal/1\",\"chain\":0,\"iteration\":1,\
                 \"start_ns\":0,\"wall_ns\":100,\"updates\":4,\"flips\":2,\
                 \"uniform_fallbacks\":0,\"pg_ns\":40,\"sd_ns\":30,\"pu_ns\":20,\
                 \"pg_cycles\":400,\"sd_cycles\":300,\"pu_cycles\":16,\
                 \"pg_batches\":1,\"pg_batch_rows\":4,\"norm_max\":null,\
                 \"exp_in_min\":null,\"exp_in_max\":null,\"stat\":null,\
                 \"ess\":null,\"rhat\":null}\n";
    let journal = format!("{sweep}{}", valid_journal());
    let (ok, _, stderr) = check("interleaved", &journal);
    assert!(ok, "mixed journal must pass: {stderr}");
}

#[test]
fn rejects_an_unknown_kernel_name() {
    let bad = render_profile_line(&sample(0, coopmc_obs::Kernel::Sweep))
        .replace("\"sweep\"", "\"warp.shuffle\"");
    let (ok, _, stderr) = check("unknown-kernel", &(bad + "\n"));
    assert!(!ok, "unknown kernel must fail");
    assert!(stderr.contains("unknown kernel 'warp.shuffle'"), "{stderr}");
}

#[test]
fn rejects_self_time_exceeding_total_time() {
    let mut s = sample(0, coopmc_obs::Kernel::Sweep);
    s.self_ns = s.total_ns + 1;
    let (ok, _, stderr) = check("self-over-total", &(render_profile_line(&s) + "\n"));
    assert!(!ok, "self > total must fail");
    assert!(stderr.contains("exceeds total-time"), "{stderr}");
}

#[test]
fn rejects_span_stack_imbalance() {
    let mut s = sample(1, coopmc_obs::Kernel::PgGather);
    s.unclosed = 3;
    let (ok, _, stderr) = check("unclosed", &(render_profile_line(&s) + "\n"));
    assert!(!ok, "unclosed spans must fail");
    assert!(stderr.contains("span-stack imbalance"), "{stderr}");
}

#[test]
fn rejects_negative_durations() {
    let bad = render_profile_line(&sample(0, coopmc_obs::Kernel::Sweep))
        .replace("\"self_ns\":7500", "\"self_ns\":-7500");
    let (ok, _, stderr) = check("negative", &(bad + "\n"));
    assert!(!ok, "negative duration must fail");
    assert!(stderr.contains("non-negative"), "{stderr}");
}

#[test]
fn rejects_a_phase_mismatch() {
    let bad = render_profile_line(&sample(1, coopmc_obs::Kernel::PgGather))
        .replace("\"phase\":\"pg\"", "\"phase\":\"pu\"");
    let (ok, _, stderr) = check("phase-mismatch", &(bad + "\n"));
    assert!(!ok, "phase mismatch must fail");
    assert!(stderr.contains("belongs to phase 'pg'"), "{stderr}");
}
