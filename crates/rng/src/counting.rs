//! Draw-counting RNG wrapper.

use crate::HwRng;

/// Wraps any [`HwRng`] and counts how many words were drawn.
///
/// The CoopMC instrumentation uses this to attribute random-number traffic to
/// the Sampling-from-Distribution step when building the Table II runtime
/// breakdown.
///
/// ```
/// use coopmc_rng::{CountingRng, HwRng, SplitMix64};
///
/// let mut rng = CountingRng::new(SplitMix64::new(1));
/// rng.next_f64();
/// rng.next_u64();
/// assert_eq!(rng.draws(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: HwRng> CountingRng<R> {
    /// Wrap `inner`, starting the counter at zero.
    pub fn new(inner: R) -> Self {
        Self { inner, draws: 0 }
    }

    /// Number of 64-bit words drawn so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Reset the counter to zero.
    pub fn reset(&mut self) {
        self.draws = 0;
    }

    /// Unwrap, returning the inner generator.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: HwRng> HwRng for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn counts_every_word() {
        let mut rng = CountingRng::new(SplitMix64::new(2));
        for _ in 0..10 {
            rng.next_u64();
        }
        assert_eq!(rng.draws(), 10);
        rng.reset();
        assert_eq!(rng.draws(), 0);
    }

    #[test]
    fn passes_through_inner_stream() {
        let mut plain = SplitMix64::new(4);
        let mut counted = CountingRng::new(SplitMix64::new(4));
        for _ in 0..5 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
    }

    #[test]
    fn into_inner_preserves_state() {
        let mut counted = CountingRng::new(SplitMix64::new(4));
        counted.next_u64();
        let mut inner = counted.into_inner();
        let mut reference = SplitMix64::new(4);
        reference.next_u64();
        assert_eq!(inner.next_u64(), reference.next_u64());
    }
}
