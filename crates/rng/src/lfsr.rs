//! Linear-feedback shift register generators.
//!
//! LFSRs are the cheapest hardware random sources: a shift register plus a
//! few XOR taps. A maximal-length `n`-bit LFSR cycles through all `2^n - 1`
//! non-zero states. Both the Galois and Fibonacci forms are modelled here
//! because published Gibbs-sampler accelerators use either.

use crate::HwRng;

/// A Galois (internal-XOR) LFSR of configurable width.
///
/// In the Galois form the feedback bit is XORed into the tap positions while
/// shifting, which in hardware means the XOR gates sit *between* register
/// stages — one gate delay per cycle regardless of tap count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisLfsr {
    state: u64,
    mask: u64,
    taps: u64,
    width: u32,
}

impl GaloisLfsr {
    /// Create an LFSR with the given `width` (2..=64) and tap polynomial
    /// `taps` (bit `i` set means stage `i` is tapped). The all-zero state is
    /// unreachable; a zero `seed` is remapped to 1.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=64` or `taps` has bits above
    /// `width`.
    pub fn new(width: u32, taps: u64, seed: u64) -> Self {
        assert!((2..=64).contains(&width), "LFSR width must be in 2..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        assert_eq!(taps & !mask, 0, "taps exceed LFSR width");
        assert_ne!(taps & mask, 0, "taps must be non-empty");
        let state = seed & mask;
        Self {
            state: if state == 0 { 1 } else { state },
            mask,
            taps,
            width,
        }
    }

    /// A 32-bit maximal-length Galois LFSR (polynomial
    /// `x^32 + x^22 + x^2 + x + 1`, taps 0xA3000000 reversed form
    /// 0x80200003 used here in shift-right convention).
    pub fn new_32(seed: u64) -> Self {
        // Standard maximal 32-bit polynomial taps for right-shift Galois form.
        Self::new(32, 0x8020_0003, seed)
    }

    /// A 16-bit maximal-length Galois LFSR (taps 0xB400 in shift-right form).
    pub fn new_16(seed: u64) -> Self {
        Self::new(16, 0xB400, seed)
    }

    /// Advance one cycle and return the new state.
    pub fn step(&mut self) -> u64 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= self.taps;
        }
        self.state &= self.mask;
        self.state
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl HwRng for GaloisLfsr {
    fn next_u64(&mut self) -> u64 {
        // Concatenate enough register states to fill 64 bits; real designs
        // clock the LFSR several times per sample word the same way.
        let mut out = 0u64;
        let mut filled = 0;
        while filled < 64 {
            out = (out << self.width.min(64 - filled))
                | (self.step() >> (self.width - self.width.min(64 - filled)));
            filled += self.width.min(64 - filled);
        }
        out
    }
}

/// A Fibonacci (external-XOR) LFSR of configurable width.
///
/// The Fibonacci form XORs several tapped stages together to form the input
/// bit; one output *bit* per cycle. This models the bit-serial threshold
/// generators used in small samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FibonacciLfsr {
    state: u64,
    taps: u64,
    mask: u64,
    width: u32,
}

impl FibonacciLfsr {
    /// Create a Fibonacci LFSR. Same argument contract as
    /// [`GaloisLfsr::new`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `2..=64` or `taps` has bits above
    /// `width`.
    pub fn new(width: u32, taps: u64, seed: u64) -> Self {
        assert!((2..=64).contains(&width), "LFSR width must be in 2..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        assert_eq!(taps & !mask, 0, "taps exceed LFSR width");
        assert_ne!(taps & mask, 0, "taps must be non-empty");
        let state = seed & mask;
        Self {
            state: if state == 0 { 1 } else { state },
            taps,
            mask,
            width,
        }
    }

    /// A 16-bit maximal-length Fibonacci LFSR (taps at 16, 15, 13, 4 —
    /// polynomial `x^16 + x^15 + x^13 + x^4 + 1`).
    pub fn new_16(seed: u64) -> Self {
        Self::new(16, 0xD008, seed)
    }

    /// Shift one bit out of the register.
    pub fn step_bit(&mut self) -> u64 {
        let feedback = (self.state & self.taps).count_ones() as u64 & 1;
        let out = self.state & 1;
        self.state = ((self.state >> 1) | (feedback << (self.width - 1))) & self.mask;
        out
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl HwRng for FibonacciLfsr {
    fn next_u64(&mut self) -> u64 {
        let mut out = 0u64;
        for _ in 0..64 {
            out = (out << 1) | self.step_bit();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HwRng;

    #[test]
    fn galois_zero_seed_is_remapped() {
        let mut a = GaloisLfsr::new_32(0);
        let mut b = GaloisLfsr::new_32(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn galois_small_lfsr_has_maximal_period() {
        // 4-bit maximal polynomial x^4 + x^3 + 1 -> taps 0b1100 in
        // right-shift Galois convention.
        let mut lfsr = GaloisLfsr::new(4, 0b1100, 1);
        let start = lfsr.step();
        let mut period = 1u32;
        while lfsr.step() != start {
            period += 1;
            assert!(period <= 20, "period runaway");
        }
        assert_eq!(period, 15, "4-bit maximal LFSR must have period 2^4 - 1");
    }

    #[test]
    fn fibonacci_small_lfsr_has_maximal_period() {
        // 4-bit maximal polynomial x^4 + x^3 + 1 -> taps at bits 3 and 0?
        // In our shift-right Fibonacci convention, taps 0b1001 (stages 4,1)
        // gives the maximal sequence for x^4 + x + 1.
        let mut lfsr = FibonacciLfsr::new(4, 0b0011, 1);
        let mut states = std::collections::HashSet::new();
        // collect the state orbit
        for _ in 0..16 {
            lfsr.step_bit();
            states.insert(lfsr.state);
        }
        assert_eq!(states.len(), 15, "4-bit maximal LFSR visits 15 states");
    }

    #[test]
    fn states_never_become_zero() {
        let mut g = GaloisLfsr::new_16(0xBEEF);
        let mut f = FibonacciLfsr::new_16(0xBEEF);
        for _ in 0..10_000 {
            assert_ne!(g.step(), 0);
            f.step_bit();
            assert_ne!(f.state, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaloisLfsr::new_32(12345);
        let mut b = GaloisLfsr::new_32(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mean_of_uniform_draws_near_half() {
        let mut rng = GaloisLfsr::new_32(2024);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    #[should_panic(expected = "taps exceed LFSR width")]
    fn oversized_taps_panic() {
        let _ = GaloisLfsr::new(8, 0x100, 1);
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn width_one_panics() {
        let _ = FibonacciLfsr::new(1, 1, 1);
    }
}
