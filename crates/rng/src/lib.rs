//! Hardware-style pseudo-random number generators for MCMC accelerators.
//!
//! The CoopMC sampler (§III-D of the paper) draws its threshold from "a
//! hardware Pseudo-random Number Generator (PRNG)". Accelerators of this
//! class use linear-feedback shift registers or xorshift-family generators:
//! a handful of XOR gates and a shift register, one fresh word per cycle.
//! This crate provides bit-accurate software models of those generators
//! behind the [`HwRng`] trait, plus a counting wrapper used by the
//! instrumentation in `coopmc-core`.
//!
//! All generators are deterministic given a seed, which is what makes the
//! paper's experiments reproducible here.
//!
//! # Example
//!
//! ```
//! use coopmc_rng::{HwRng, XorShift64Star};
//!
//! let mut rng = XorShift64Star::new(42);
//! let u = rng.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

mod counting;
mod lfsr;
mod philox;
mod splitmix;
mod xorshift;

pub use counting::CountingRng;
pub use lfsr::{FibonacciLfsr, GaloisLfsr};
pub use philox::Philox4x32;
pub use splitmix::SplitMix64;
pub use xorshift::XorShift64Star;

/// A deterministic hardware-style random number generator.
///
/// The trait is object-safe so heterogeneous sampler configurations can share
/// a `&mut dyn HwRng`.
pub trait HwRng {
    /// Produce the next 64 raw bits of generator output.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 raw bits (upper half of [`HwRng::next_u64`] by
    /// default; narrow LFSRs override this with native-width output).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits, the mantissa width of f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_index requires n > 0");
        // Floating-point scaling; bias is negligible for the label counts
        // used here (n is at most a few thousand).
        (self.next_f64() * n as f64) as usize % n
    }
}

impl<R: HwRng + ?Sized> HwRng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: HwRng + ?Sized> HwRng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let mut rng: Box<dyn HwRng> = Box::new(SplitMix64::new(1));
        let _ = rng.next_u64();
        let _ = rng.next_f64();
    }

    #[test]
    fn next_f64_in_unit_interval_for_all_generators() {
        let mut gens: Vec<Box<dyn HwRng>> = vec![
            Box::new(SplitMix64::new(7)),
            Box::new(XorShift64Star::new(7)),
            Box::new(GaloisLfsr::new_32(7)),
            Box::new(FibonacciLfsr::new_16(7)),
        ];
        for g in &mut gens {
            for _ in 0..1000 {
                let u = g.next_f64();
                assert!((0.0..1.0).contains(&u), "u = {u}");
            }
        }
    }

    #[test]
    fn uniform_index_covers_range() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.uniform_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 should appear");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn uniform_index_zero_panics() {
        SplitMix64::new(1).uniform_index(0);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut rng = SplitMix64::new(9);
        let direct = SplitMix64::new(9).next_u64();
        let via_ref = HwRng::next_u64(&mut &mut rng);
        assert_eq!(direct, via_ref);
    }
}
