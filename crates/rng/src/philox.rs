//! Philox4x32-10 counter-based generator.
//!
//! Counter-based RNGs are the natural fit for *parallel* samplers: stream
//! `k` is just counter-prefix `k`, so every PG pipeline or chromatic worker
//! gets an independent, reproducible stream with no shared state — the same
//! reason GPUs and accelerator arrays standardized on Philox (Salmon et al.,
//! SC'11). The implementation below is the full 10-round Philox4x32 with
//! known-answer tests from the reference implementation.

use crate::HwRng;

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

/// Philox4x32-10: a 128-bit counter, 64-bit key, 10 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Philox4x32 {
    counter: [u32; 4],
    key: [u32; 2],
    /// Buffered outputs from the last block.
    buffer: [u32; 4],
    /// Next unread buffer index (4 = empty).
    cursor: usize,
}

impl Philox4x32 {
    /// Create a generator keyed by `key`, starting at counter zero.
    pub fn new(key: u64) -> Self {
        Self::with_stream(key, 0)
    }

    /// Create a generator on an independent `stream`: the stream id is
    /// placed in the upper counter words, so streams never overlap for
    /// fewer than 2^64 draws each.
    pub fn with_stream(key: u64, stream: u64) -> Self {
        Self {
            counter: [0, 0, stream as u32, (stream >> 32) as u32],
            key: [key as u32, (key >> 32) as u32],
            buffer: [0; 4],
            cursor: 4,
        }
    }

    /// One Philox round.
    fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
        let p0 = (PHILOX_M0 as u64) * (ctr[0] as u64);
        let p1 = (PHILOX_M1 as u64) * (ctr[2] as u64);
        [
            (p1 >> 32) as u32 ^ ctr[1] ^ key[0],
            p1 as u32,
            (p0 >> 32) as u32 ^ ctr[3] ^ key[1],
            p0 as u32,
        ]
    }

    /// Encrypt one 128-bit block (10 rounds with key schedule).
    fn block(&self) -> [u32; 4] {
        let mut ctr = self.counter;
        let mut key = self.key;
        for _ in 0..10 {
            ctr = Self::round(ctr, key);
            key[0] = key[0].wrapping_add(PHILOX_W0);
            key[1] = key[1].wrapping_add(PHILOX_W1);
        }
        ctr
    }

    fn advance_counter(&mut self) {
        for word in &mut self.counter {
            let (v, carry) = word.overflowing_add(1);
            *word = v;
            if !carry {
                break;
            }
        }
    }

    fn next_u32_word(&mut self) -> u32 {
        if self.cursor >= 4 {
            self.buffer = self.block();
            self.advance_counter();
            self.cursor = 0;
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        v
    }
}

impl HwRng for Philox4x32 {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32_word() as u64;
        let hi = self.next_u32_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_u32_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test from the Random123 reference: all-zero counter and
    /// key.
    #[test]
    fn known_answer_zero_inputs() {
        let rng = Philox4x32 {
            counter: [0; 4],
            key: [0; 2],
            buffer: [0; 4],
            cursor: 4,
        };
        let block = rng.block();
        assert_eq!(block, [0x6627_E8D5, 0xE169_C58D, 0xBC57_AC4C, 0x9B00_DBD8]);
    }

    /// Known-answer test: all-ones counter and key.
    #[test]
    fn known_answer_ones_inputs() {
        let rng = Philox4x32 {
            counter: [u32::MAX; 4],
            key: [u32::MAX; 2],
            buffer: [0; 4],
            cursor: 4,
        };
        let block = rng.block();
        assert_eq!(block, [0x408F_276D, 0x41C8_3B0E, 0xA20B_C7C6, 0x6D54_51FD]);
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a = Philox4x32::with_stream(7, 0);
        let mut a2 = Philox4x32::with_stream(7, 0);
        let mut b = Philox4x32::with_stream(7, 1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let xs2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn counter_carries_across_words() {
        let mut rng = Philox4x32::new(1);
        rng.counter = [u32::MAX, 0, 0, 0];
        rng.advance_counter();
        assert_eq!(rng.counter, [0, 1, 0, 0]);
        rng.counter = [u32::MAX, u32::MAX, u32::MAX, 5];
        rng.advance_counter();
        assert_eq!(rng.counter, [0, 0, 0, 6]);
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = Philox4x32::new(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
