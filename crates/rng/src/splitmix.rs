//! SplitMix64 generator.

use crate::HwRng;

/// SplitMix64: a counter-based generator with a strong finalizer.
///
/// Used here as the "golden" software RNG for reference (float32) inference
/// runs and as a seeding utility for the workload generators: every state is
/// reachable, so there is no bad-seed handling at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from `seed`. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent child seed (handy for per-chain seeding).
    pub fn derive(&mut self) -> u64 {
        self.next_u64()
    }
}

impl HwRng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_first_outputs() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn derive_gives_distinct_seeds() {
        let mut rng = SplitMix64::new(5);
        let a = rng.derive();
        let b = rng.derive();
        assert_ne!(a, b);
    }

    #[test]
    fn chi_square_uniformity_16_bins() {
        let mut rng = SplitMix64::new(31337);
        let bins = 16usize;
        let draws = 32_000usize;
        let mut counts = vec![0usize; bins];
        for _ in 0..draws {
            counts[(rng.next_f64() * bins as f64) as usize] += 1;
        }
        let expected = draws as f64 / bins as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 15 degrees of freedom; 0.999 quantile ~ 37.7. Generous bound to
        // stay deterministic and non-flaky.
        assert!(chi2 < 45.0, "chi-square {chi2} too large");
    }
}
