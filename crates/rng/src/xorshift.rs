//! Marsaglia xorshift64* generator.

use crate::HwRng;

/// The xorshift64* generator: three shifts, three XORs and one multiply.
///
/// A popular compromise in FPGA/ASIC designs when LFSR quality is not enough:
/// still only a handful of gates plus one multiplier, with far better
/// equidistribution than a plain LFSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Create a generator from `seed`. A zero seed (which would be a fixed
    /// point) is remapped to a non-zero constant.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }
}

impl HwRng for XorShift64Star {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = XorShift64Star::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn deterministic() {
        let mut a = XorShift64Star::new(99);
        let mut b = XorShift64Star::new(99);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bits_are_balanced() {
        let mut rng = XorShift64Star::new(7);
        let mut ones = 0u64;
        let draws = 10_000;
        for _ in 0..draws {
            ones += rng.next_u64().count_ones() as u64;
        }
        let frac = ones as f64 / (64.0 * draws as f64);
        assert!((frac - 0.5).abs() < 0.005, "one-bit fraction {frac}");
    }
}
