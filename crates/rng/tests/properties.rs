//! Property-based tests for the hardware RNG substrate.

use coopmc_rng::{FibonacciLfsr, GaloisLfsr, HwRng, Philox4x32, SplitMix64, XorShift64Star};
use proptest::prelude::*;

proptest! {
    /// Every generator keeps its uniform draws in [0, 1) for any seed.
    #[test]
    fn unit_interval_for_all_generators(seed in any::<u64>()) {
        let mut gens: Vec<Box<dyn HwRng>> = vec![
            Box::new(SplitMix64::new(seed)),
            Box::new(XorShift64Star::new(seed)),
            Box::new(GaloisLfsr::new_32(seed)),
            Box::new(FibonacciLfsr::new_16(seed)),
            Box::new(Philox4x32::new(seed)),
        ];
        for g in &mut gens {
            for _ in 0..50 {
                let u = g.next_f64();
                prop_assert!((0.0..1.0).contains(&u));
            }
        }
    }

    /// uniform_index stays in range for any n and seed.
    #[test]
    fn uniform_index_in_range(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            prop_assert!(rng.uniform_index(n) < n);
        }
    }

    /// Identically seeded generators produce identical streams; different
    /// Philox streams never collide on a prefix.
    #[test]
    fn determinism_and_stream_separation(seed in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let a: Vec<u64> = {
            let mut g = Philox4x32::with_stream(seed, s1);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut g = Philox4x32::with_stream(seed, s1);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Philox4x32::with_stream(seed, s2);
            (0..8).map(|_| g.next_u64()).collect()
        };
        prop_assert_eq!(&a, &a2);
        prop_assert_ne!(a, b);
    }

    /// LFSR states never reach zero (the absorbing state) from any seed.
    #[test]
    fn lfsr_avoids_zero_state(seed in any::<u64>()) {
        let mut g = GaloisLfsr::new_32(seed);
        for _ in 0..200 {
            prop_assert_ne!(g.step(), 0);
        }
    }
}
