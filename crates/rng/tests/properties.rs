//! Property-based tests for the hardware RNG substrate (deterministic
//! generator harness from `coopmc-testkit`).

use coopmc_rng::{FibonacciLfsr, GaloisLfsr, HwRng, Philox4x32, SplitMix64, XorShift64Star};
use coopmc_testkit::check;

#[test]
fn unit_interval_for_all_generators() {
    check("unit_interval_for_all_generators", 64, |g| {
        let seed = g.u64();
        let mut gens: Vec<Box<dyn HwRng>> = vec![
            Box::new(SplitMix64::new(seed)),
            Box::new(XorShift64Star::new(seed)),
            Box::new(GaloisLfsr::new_32(seed)),
            Box::new(FibonacciLfsr::new_16(seed)),
            Box::new(Philox4x32::new(seed)),
        ];
        for r in &mut gens {
            for _ in 0..50 {
                let u = r.next_f64();
                assert!((0.0..1.0).contains(&u));
            }
        }
    });
}

#[test]
fn uniform_index_in_range() {
    check("uniform_index_in_range", 128, |g| {
        let seed = g.u64();
        let n = g.usize_in(1, 10_000);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            assert!(rng.uniform_index(n) < n);
        }
    });
}

#[test]
fn determinism_and_stream_separation() {
    check("determinism_and_stream_separation", 128, |g| {
        let seed = g.u64();
        let s1 = g.u64();
        let s2 = g.u64();
        if s1 == s2 {
            return;
        }
        let run = |stream: u64| -> Vec<u64> {
            let mut r = Philox4x32::with_stream(seed, stream);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(run(s1), run(s1));
        assert_ne!(run(s1), run(s2));
    });
}

#[test]
fn lfsr_avoids_zero_state() {
    check("lfsr_avoids_zero_state", 128, |g| {
        let mut r = GaloisLfsr::new_32(g.u64());
        for _ in 0..200 {
            assert_ne!(r.step(), 0);
        }
    });
}
