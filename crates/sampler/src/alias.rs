//! Vose alias-table sampler — the software baseline of LightLDA-class
//! systems (the paper's references \[31\], \[32\]).
//!
//! Where the hardware TreeSampler spends `O(log N)` cycles per draw with no
//! preprocessing, the alias method spends `O(N)` once to build a table and
//! then draws in `O(1)`. That trade-off only pays when many draws reuse one
//! distribution — which Gibbs sampling violates (the distribution changes
//! after every update). Having the baseline executable makes that argument
//! measurable (see the `samplers` criterion bench).

use coopmc_rng::HwRng;

use crate::{uniform_fallback, validate, SampleResult, Sampler};

/// A built alias table over a fixed distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold per column, scaled to [0, 1].
    prob: Vec<f64>,
    /// Alias (overflow) label per column.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build the table in `O(N)` (Vose's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty, contains invalid weights, or sums to
    /// zero.
    pub fn build(probs: &[f64]) -> Self {
        let total = validate(probs);
        assert!(total > 0.0, "alias table needs positive total mass");
        let n = probs.len();
        let scaled: Vec<f64> = probs.iter().map(|&p| p * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        #[allow(clippy::while_let_loop)] // the donor-exhausted arm must restore `s`
        loop {
            let Some(s) = small.pop() else { break };
            let Some(l) = large.pop() else {
                // No donor left: numerical residue pins this column at 1.
                small.push(s);
                break;
            };
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Self { prob, alias }
    }

    /// Number of columns (labels).
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table is empty (never constructible — kept for the
    /// conventional pair with [`AliasTable::len`]).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one label in `O(1)`.
    pub fn sample(&self, rng: &mut dyn HwRng) -> usize {
        let i = rng.uniform_index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// The exact distribution this table encodes (for verification):
    /// column acceptance mass plus received alias mass, normalized.
    pub fn encoded_distribution(&self) -> Vec<f64> {
        let n = self.prob.len();
        let mut mass = vec![0.0; n];
        for i in 0..n {
            mass[i] += self.prob[i];
            mass[self.alias[i]] += 1.0 - self.prob[i];
        }
        for m in &mut mass {
            *m /= n as f64;
        }
        mass
    }
}

/// One-shot alias sampler implementing the common [`Sampler`] interface:
/// builds the table, draws once. Its cycle model charges the full `O(N)`
/// construction to every draw — the honest cost in a Gibbs loop where the
/// distribution is fresh each time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AliasSampler;

impl AliasSampler {
    /// Create an alias sampler.
    pub fn new() -> Self {
        Self
    }
}

impl Sampler for AliasSampler {
    fn sample(&self, probs: &[f64], rng: &mut dyn HwRng) -> SampleResult {
        let total = validate(probs);
        if total == 0.0 {
            return SampleResult {
                label: uniform_fallback(probs.len(), rng),
                cycles: self.latency_cycles(probs.len()),
                fallback: true,
            };
        }
        let table = AliasTable::build(probs);
        SampleResult {
            label: table.sample(rng),
            cycles: self.latency_cycles(probs.len()),
            fallback: false,
        }
    }

    fn sample_with_threshold(&self, probs: &[f64], t: f64) -> SampleResult {
        // The alias method is not a CDF-inversion sampler; map the
        // threshold through the CDF so cross-sampler equivalence tests
        // still hold.
        crate::SequentialSampler::new().sample_with_threshold(probs, t)
    }

    fn latency_cycles(&self, n: usize) -> u64 {
        // Vose construction touches every column roughly three times
        // (scale, partition, pair), then a 2-cycle draw.
        3 * n as u64 + 2
    }

    fn name(&self) -> &'static str {
        "alias"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopmc_rng::SplitMix64;

    #[test]
    fn encoded_distribution_matches_input() {
        let probs = [0.1, 0.4, 0.2, 0.3];
        let table = AliasTable::build(&probs);
        let enc = table.encoded_distribution();
        for (p, e) in probs.iter().zip(&enc) {
            assert!((p - e).abs() < 1e-12, "encoded {enc:?}");
        }
    }

    #[test]
    fn handles_degenerate_and_uniform_inputs() {
        // one-hot
        let one_hot = AliasTable::build(&[0.0, 1.0, 0.0]);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(one_hot.sample(&mut rng), 1);
        }
        // uniform
        let uni = AliasTable::build(&[1.0; 8]);
        let enc = uni.encoded_distribution();
        assert!(enc.iter().all(|&e| (e - 0.125).abs() < 1e-12));
    }

    #[test]
    fn chi_square_against_weights() {
        let probs = [5.0, 1.0, 3.0, 1.0];
        let total: f64 = probs.iter().sum();
        let table = AliasTable::build(&probs);
        let mut rng = SplitMix64::new(9);
        let draws = 40_000;
        let mut counts = [0u64; 4];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let chi2: f64 = probs
            .iter()
            .zip(&counts)
            .map(|(&p, &c)| {
                let e = draws as f64 * p / total;
                (c as f64 - e).powi(2) / e
            })
            .sum();
        assert!(chi2 < 20.0, "chi2 {chi2}, counts {counts:?}");
    }

    #[test]
    fn sampler_interface_works_and_charges_build_cost() {
        let s = AliasSampler::new();
        let mut rng = SplitMix64::new(3);
        let r = s.sample(&[0.5, 0.5], &mut rng);
        assert!(r.label < 2);
        assert_eq!(s.latency_cycles(64), 3 * 64 + 2);
        assert_eq!(r.cycles, 8);
    }

    #[test]
    fn unnormalized_weights_are_fine() {
        let table = AliasTable::build(&[10.0, 30.0]);
        let enc = table.encoded_distribution();
        assert!((enc[0] - 0.25).abs() < 1e-12);
        assert!((enc[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_distribution_panics() {
        let _ = AliasTable::build(&[]);
    }
}
