//! Sampling-from-Distribution (SD) micro-architectures.
//!
//! Step 2 of the CoopMC computational flow draws a new label with probability
//! proportional to the `P_x` vector produced by Probability Generation. The
//! paper (§III-D) compares three hardware designs, all modelled here
//! bit-faithfully with cycle-accurate latency accounting:
//!
//! - [`SequentialSampler`] — the prior-art cumulative scan, `2N + 1` cycles
//!   per sample.
//! - [`TreeSampler`] — the paper's contribution: *TreeSum* adder tree,
//!   *ThresholdGen*, and *TraverseTree* comparator walk (Fig. 8),
//!   `2⌈log₂N⌉ + 3` cycles per sample.
//! - [`PipeTreeSampler`] — TreeSampler with inter-layer shift registers:
//!   identical latency, but a steady-state throughput of one sample per
//!   cycle.
//!
//! All three implement the same sampling rule — threshold
//! `T = total · u, u ∼ U[0,1)`, new label = smallest `n` with
//! `A_x(n) > T` — so they are *statistically identical*; they differ only in
//! time and area. The equivalence is tested exhaustively in this crate.
//!
//! # Example
//!
//! ```
//! use coopmc_rng::SplitMix64;
//! use coopmc_sampler::{Sampler, TreeSampler};
//!
//! let sampler = TreeSampler::new();
//! let mut rng = SplitMix64::new(7);
//! let probs = [0.1, 0.7, 0.2];
//! let result = sampler.sample(&probs, &mut rng);
//! assert!(result.label < 3);
//! assert_eq!(result.cycles, 2 * 2 + 3); // 2·⌈log₂(padded 4)⌉? see docs
//! ```

mod alias;
mod pipe;
mod sequential;
mod tree;

pub use alias::{AliasSampler, AliasTable};
pub use pipe::PipeTreeSampler;
pub use sequential::SequentialSampler;
pub use tree::{TreeSampler, TreeSum};

use coopmc_rng::HwRng;

/// Outcome of drawing one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleResult {
    /// The sampled label index.
    pub label: usize,
    /// Latency of this draw in cycles.
    pub cycles: u64,
    /// Whether the draw hit the all-zero-mass uniform fallback (the Fig. 2
    /// flush regime) instead of a real CDF inversion.
    pub fallback: bool,
}

/// Reusable per-draw working memory for [`Sampler::sample_into`].
///
/// The scratch owns whatever buffers a sampler micro-architecture needs to
/// rebuild per draw (for the tree samplers, the flat [`TreeSum`] node
/// buffer). Once warmed to the largest distribution seen, subsequent draws
/// through the same scratch perform **zero heap allocations** — the property
/// the Gibbs engine's hot path relies on.
///
/// A scratch is plain data: create one per sampling thread and pass it to
/// every draw on that thread. It is not tied to a particular sampler; the
/// same scratch can serve different `Sampler` impls interchangeably.
#[derive(Debug, Clone, Default)]
pub struct SampleScratch {
    /// Reusable adder-tree storage for the tree-based samplers.
    pub(crate) tree: TreeSum,
}

impl SampleScratch {
    /// Create an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A discrete-distribution sampler micro-architecture.
///
/// `probs` are **unnormalized, non-negative** weights — exactly what the PG
/// step hands over; no hardware normalizes the vector. If every weight is
/// zero (the low-precision flush failure mode of Fig. 2), the sampler falls
/// back to a uniform random label, matching the paper's description of that
/// degenerate regime.
pub trait Sampler {
    /// Draw one label from `probs` using `rng` for the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or contains a negative or non-finite
    /// weight.
    fn sample(&self, probs: &[f64], rng: &mut dyn HwRng) -> SampleResult;

    /// Draw one label, reusing `scratch` for any per-draw working memory.
    ///
    /// Statistically and bit-for-bit identical to [`Sampler::sample`] under
    /// the same RNG state; the only difference is allocation behaviour —
    /// a warmed scratch makes the draw allocation-free. The default
    /// implementation simply delegates to `sample` (correct for samplers
    /// that need no working memory).
    ///
    /// # Panics
    ///
    /// Same contract as [`Sampler::sample`].
    fn sample_into(
        &self,
        probs: &[f64],
        rng: &mut dyn HwRng,
        scratch: &mut SampleScratch,
    ) -> SampleResult {
        let _ = scratch;
        self.sample(probs, rng)
    }

    /// Draw one label per `width`-wide row of a row-major batch of
    /// probability vectors (the SD half of the batched color-class path),
    /// pushing one [`SampleResult`] per row into `results` (cleared
    /// first).
    ///
    /// `rng_for_row` supplies each row's RNG — the chromatic engine
    /// derives one per variable from `(seed, iteration, var)` — so the
    /// draws are **bit-identical** to calling [`Sampler::sample_into`]
    /// once per row with the same RNGs, and independent of how rows were
    /// grouped into batches. The per-draw working memory in `scratch` is
    /// reused across rows, keeping a warmed batch draw allocation-free.
    ///
    /// Requires `Self: Sized` so the trait stays object-safe; `Box<dyn
    /// Sampler>` callers draw per row via [`Sampler::sample_into`].
    ///
    /// # Panics
    ///
    /// Per row, the same contract as [`Sampler::sample_into`];
    /// additionally panics if `width == 0` or `probs.len()` is not a
    /// multiple of `width`.
    fn sample_rows_into<F, R>(
        &self,
        probs: &[f64],
        width: usize,
        mut rng_for_row: F,
        results: &mut Vec<SampleResult>,
        scratch: &mut SampleScratch,
    ) where
        Self: Sized,
        F: FnMut(usize) -> R,
        R: HwRng,
    {
        assert!(width > 0, "row width must be positive");
        assert_eq!(
            probs.len() % width,
            0,
            "batch length must be a multiple of the row width"
        );
        results.clear();
        for (row, chunk) in probs.chunks_exact(width).enumerate() {
            let mut rng = rng_for_row(row);
            results.push(self.sample_into(chunk, &mut rng, scratch));
        }
    }

    /// Deterministic core: draw with an explicit threshold
    /// `t ∈ [0, total)`. Exposed so different micro-architectures can be
    /// proven equivalent under the same threshold.
    ///
    /// # Panics
    ///
    /// Same contract as [`Sampler::sample`]; additionally `t` must be in
    /// `[0, total)`.
    fn sample_with_threshold(&self, probs: &[f64], t: f64) -> SampleResult;

    /// Latency in cycles of one sample for an `n`-label distribution.
    fn latency_cycles(&self, n: usize) -> u64;

    /// Steady-state throughput in samples per cycle for an `n`-label
    /// distribution (`1 / latency` unless pipelined).
    fn throughput(&self, n: usize) -> f64 {
        1.0 / self.latency_cycles(n) as f64
    }

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

impl<S: Sampler + ?Sized> Sampler for Box<S> {
    fn sample(&self, probs: &[f64], rng: &mut dyn HwRng) -> SampleResult {
        (**self).sample(probs, rng)
    }

    fn sample_into(
        &self,
        probs: &[f64],
        rng: &mut dyn HwRng,
        scratch: &mut SampleScratch,
    ) -> SampleResult {
        (**self).sample_into(probs, rng, scratch)
    }

    fn sample_with_threshold(&self, probs: &[f64], t: f64) -> SampleResult {
        (**self).sample_with_threshold(probs, t)
    }

    fn latency_cycles(&self, n: usize) -> u64 {
        (**self).latency_cycles(n)
    }

    fn throughput(&self, n: usize) -> f64 {
        (**self).throughput(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Validate a probability vector and return its total mass.
///
/// # Panics
///
/// Panics if `probs` is empty or has a negative/non-finite element.
pub(crate) fn validate(probs: &[f64]) -> f64 {
    assert!(
        !probs.is_empty(),
        "sampler requires a non-empty distribution"
    );
    let mut total = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        assert!(p.is_finite() && p >= 0.0, "invalid weight {p} at index {i}");
        total += p;
    }
    total
}

/// Shared uniform-fallback for the all-zero distribution.
pub(crate) fn uniform_fallback(n: usize, rng: &mut dyn HwRng) -> usize {
    rng.uniform_index(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopmc_rng::SplitMix64;

    fn samplers() -> Vec<Box<dyn Sampler>> {
        vec![
            Box::new(SequentialSampler::new()),
            Box::new(TreeSampler::new()),
            Box::new(PipeTreeSampler::new()),
        ]
    }

    #[test]
    fn all_samplers_agree_under_same_threshold() {
        let probs = [0.05, 0.3, 0.0, 0.15, 0.25, 0.25];
        let total: f64 = probs.iter().sum();
        for k in 0..200 {
            let t = total * (k as f64 + 0.5) / 200.5;
            let labels: Vec<usize> = samplers()
                .iter()
                .map(|s| s.sample_with_threshold(&probs, t).label)
                .collect();
            assert!(
                labels.windows(2).all(|w| w[0] == w[1]),
                "disagreement at t={t}: {labels:?}"
            );
        }
    }

    #[test]
    fn threshold_boundaries_select_correct_label() {
        // A = [0.2, 0.5, 1.0]: T < 0.2 -> 0; 0.2 <= T < 0.5 -> 1; else 2.
        let probs = [0.2, 0.3, 0.5];
        for s in samplers() {
            assert_eq!(s.sample_with_threshold(&probs, 0.0).label, 0);
            assert_eq!(s.sample_with_threshold(&probs, 0.1999).label, 0);
            assert_eq!(s.sample_with_threshold(&probs, 0.2).label, 1);
            assert_eq!(s.sample_with_threshold(&probs, 0.4999).label, 1);
            assert_eq!(s.sample_with_threshold(&probs, 0.5).label, 2);
            assert_eq!(s.sample_with_threshold(&probs, 0.9999).label, 2);
        }
    }

    #[test]
    fn zero_weight_labels_are_never_selected() {
        let probs = [0.0, 0.4, 0.0, 0.6, 0.0];
        let mut rng = SplitMix64::new(11);
        for s in samplers() {
            for _ in 0..500 {
                let l = s.sample(&probs, &mut rng).label;
                assert!(
                    l == 1 || l == 3,
                    "{} selected zero-weight label {l}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn all_zero_distribution_falls_back_to_uniform() {
        let probs = [0.0; 8];
        for s in samplers() {
            let mut rng = SplitMix64::new(5);
            let mut seen = [false; 8];
            for _ in 0..400 {
                seen[s.sample(&probs, &mut rng).label] = true;
            }
            assert!(
                seen.iter().all(|&b| b),
                "{} missed labels: {seen:?}",
                s.name()
            );
        }
    }

    #[test]
    fn empirical_distribution_matches_weights_chi_square() {
        let probs = [1.0, 2.0, 3.0, 4.0];
        let total: f64 = probs.iter().sum();
        let draws = 40_000;
        for s in samplers() {
            let mut rng = SplitMix64::new(77);
            let mut counts = [0u64; 4];
            for _ in 0..draws {
                counts[s.sample(&probs, &mut rng).label] += 1;
            }
            let chi2: f64 = probs
                .iter()
                .zip(&counts)
                .map(|(&p, &c)| {
                    let e = draws as f64 * p / total;
                    (c as f64 - e).powi(2) / e
                })
                .sum();
            // 3 dof, 0.999 quantile ~ 16.3; generous deterministic bound.
            assert!(
                chi2 < 20.0,
                "{}: chi2 = {chi2}, counts {counts:?}",
                s.name()
            );
        }
    }

    #[test]
    fn single_label_distribution() {
        let mut rng = SplitMix64::new(1);
        for s in samplers() {
            assert_eq!(s.sample(&[3.0], &mut rng).label, 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_distribution_panics() {
        let mut rng = SplitMix64::new(1);
        SequentialSampler::new().sample(&[], &mut rng);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        let mut rng = SplitMix64::new(1);
        TreeSampler::new().sample(&[0.5, -0.1], &mut rng);
    }

    #[test]
    fn latency_ordering_matches_paper() {
        // Fig. 9: tree latency beats sequential for larger N, speedup grows.
        let seq = SequentialSampler::new();
        let tree = TreeSampler::new();
        let s64 = seq.latency_cycles(64) as f64 / tree.latency_cycles(64) as f64;
        let s128 = seq.latency_cycles(128) as f64 / tree.latency_cycles(128) as f64;
        assert!(
            s64 > 8.0 && s64 < 10.0,
            "64-label speedup {s64} (paper: 8.7x)"
        );
        assert!(s128 > s64, "speedup must grow with label count");
    }

    #[test]
    fn batched_row_draws_match_per_row_draws() {
        // 5 rows of width 4, including an all-zero row (uniform fallback).
        let flat = [
            0.1, 0.7, 0.2, 0.0, //
            0.0, 0.0, 0.0, 0.0, //
            0.25, 0.25, 0.25, 0.25, //
            1.0, 0.0, 0.0, 3.0, //
            0.4, 0.3, 0.2, 0.1,
        ];
        let rng_for = |row: usize| SplitMix64::new(0xFEED ^ (row as u64).wrapping_mul(0x9E37));
        let sampler = TreeSampler::new();
        let mut results = Vec::new();
        let mut scratch = SampleScratch::new();
        sampler.sample_rows_into(&flat, 4, rng_for, &mut results, &mut scratch);
        assert_eq!(results.len(), 5);
        let mut scalar_scratch = SampleScratch::new();
        for (row, chunk) in flat.chunks_exact(4).enumerate() {
            let mut rng = rng_for(row);
            let want = sampler.sample_into(chunk, &mut rng, &mut scalar_scratch);
            assert_eq!(results[row], want, "row {row}");
        }
        assert!(results[1].fallback, "all-zero row must hit the fallback");
    }

    #[test]
    #[should_panic(expected = "multiple of the row width")]
    fn batched_row_draws_reject_ragged_batches() {
        let mut results = Vec::new();
        let mut scratch = SampleScratch::new();
        TreeSampler::new().sample_rows_into(
            &[0.5, 0.5, 0.5],
            2,
            |row| SplitMix64::new(row as u64),
            &mut results,
            &mut scratch,
        );
    }

    #[test]
    fn pipelined_throughput_is_one_per_cycle() {
        let pipe = PipeTreeSampler::new();
        assert_eq!(pipe.throughput(64), 1.0);
        let tree = TreeSampler::new();
        assert!(tree.throughput(64) < 1.0);
    }
}
