//! The pipelined TreeSampler (PipeTreeSampler).

use coopmc_rng::HwRng;

use crate::{
    uniform_fallback, validate, SampleResult, SampleScratch, Sampler, TreeSampler, TreeSum,
};

/// TreeSampler with shift registers between corresponding TreeSum and
/// TraverseTree layers (paper §III-D, last paragraph).
///
/// The shift registers let a new probability vector enter TreeSum every
/// cycle while earlier vectors are still traversing: latency per sample is
/// unchanged versus [`TreeSampler`], but steady-state throughput rises to
/// **one sample per cycle**. The batch API models a full pipeline: `k`
/// samples complete in `latency + (k − 1)` cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeTreeSampler {
    inner: TreeSampler,
}

impl PipeTreeSampler {
    /// Create a pipelined tree sampler.
    pub fn new() -> Self {
        Self {
            inner: TreeSampler::new(),
        }
    }

    /// Sample one label from each distribution in `batch`, modelling the
    /// pipeline: total cycles are `latency + (batch.len() − 1)`.
    ///
    /// Returns the labels and the total cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty or any distribution is invalid.
    pub fn sample_batch(&self, batch: &[&[f64]], rng: &mut dyn HwRng) -> (Vec<usize>, u64) {
        assert!(!batch.is_empty(), "batch must be non-empty");
        let labels: Vec<usize> = batch
            .iter()
            .map(|probs| self.sample(probs, rng).label)
            .collect();
        let n_max = batch.iter().map(|p| p.len()).max().unwrap();
        let cycles = self.latency_cycles(n_max) + (batch.len() as u64 - 1);
        (labels, cycles)
    }
}

impl Sampler for PipeTreeSampler {
    fn sample(&self, probs: &[f64], rng: &mut dyn HwRng) -> SampleResult {
        let total = validate(probs);
        if total == 0.0 {
            return SampleResult {
                label: uniform_fallback(probs.len(), rng),
                cycles: self.latency_cycles(probs.len()),
                fallback: true,
            };
        }
        let t = total * rng.next_f64();
        self.sample_with_threshold(probs, t)
    }

    fn sample_into(
        &self,
        probs: &[f64],
        rng: &mut dyn HwRng,
        scratch: &mut SampleScratch,
    ) -> SampleResult {
        let total = validate(probs);
        if total == 0.0 {
            return SampleResult {
                label: uniform_fallback(probs.len(), rng),
                cycles: self.latency_cycles(probs.len()),
                fallback: true,
            };
        }
        let t = total * rng.next_f64();
        scratch.tree.rebuild(probs);
        let label = scratch.tree.traverse(t).min(probs.len() - 1);
        SampleResult {
            label,
            cycles: self.latency_cycles(probs.len()),
            fallback: false,
        }
    }

    fn sample_with_threshold(&self, probs: &[f64], t: f64) -> SampleResult {
        let total = validate(probs);
        assert!(
            (0.0..total.max(f64::MIN_POSITIVE)).contains(&t),
            "threshold out of range"
        );
        let tree = TreeSum::build(probs);
        let label = tree.traverse(t).min(probs.len() - 1);
        SampleResult {
            label,
            cycles: self.latency_cycles(probs.len()),
            fallback: false,
        }
    }

    fn latency_cycles(&self, n: usize) -> u64 {
        self.inner.latency_cycles(n)
    }

    /// One sample per cycle in steady state.
    fn throughput(&self, _n: usize) -> f64 {
        1.0
    }

    fn name(&self) -> &'static str {
        "pipe-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopmc_rng::SplitMix64;

    #[test]
    fn batch_cycles_are_latency_plus_k_minus_1() {
        let pipe = PipeTreeSampler::new();
        let probs = vec![0.25; 64];
        let batch: Vec<&[f64]> = (0..10).map(|_| probs.as_slice()).collect();
        let mut rng = SplitMix64::new(3);
        let (labels, cycles) = pipe.sample_batch(&batch, &mut rng);
        assert_eq!(labels.len(), 10);
        assert_eq!(cycles, pipe.latency_cycles(64) + 9);
    }

    #[test]
    fn pipelined_beats_unpipelined_on_batches() {
        let pipe = PipeTreeSampler::new();
        let tree = TreeSampler::new();
        let k = 100u64;
        let unpipelined = k * tree.latency_cycles(64);
        let pipelined = pipe.latency_cycles(64) + (k - 1);
        assert!(pipelined * 5 < unpipelined, "{pipelined} vs {unpipelined}");
    }

    #[test]
    fn same_latency_as_tree_sampler() {
        let pipe = PipeTreeSampler::new();
        let tree = TreeSampler::new();
        for n in [2usize, 7, 16, 64, 128] {
            assert_eq!(pipe.latency_cycles(n), tree.latency_cycles(n));
        }
    }

    #[test]
    fn identical_labels_to_tree_sampler_with_same_threshold() {
        let pipe = PipeTreeSampler::new();
        let tree = TreeSampler::new();
        let probs = [0.1, 0.4, 0.2, 0.3];
        for k in 0..50 {
            let t = 0.999 * k as f64 / 50.0;
            assert_eq!(
                pipe.sample_with_threshold(&probs, t).label,
                tree.sample_with_threshold(&probs, t).label
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = PipeTreeSampler::new().sample_batch(&[], &mut rng);
    }
}
