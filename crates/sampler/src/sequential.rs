//! The prior-art sequential cumulative-scan sampler.

use coopmc_rng::HwRng;

use crate::{uniform_fallback, validate, SampleResult, Sampler};

/// The iterative sampler of previous Gibbs accelerator designs (§III-D).
///
/// Hardware structure: one accumulator register, one adder and one
/// comparator. The probability vector streams past the accumulator once to
/// form the total (N cycles), ThresholdGen multiplies by a uniform draw
/// (1 cycle), then the vector streams past again accumulating until the
/// running sum exceeds the threshold (up to N cycles) — `2N + 1` cycles per
/// sample, the paper's quoted cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialSampler;

impl SequentialSampler {
    /// Create a sequential sampler.
    pub fn new() -> Self {
        Self
    }
}

impl Sampler for SequentialSampler {
    fn sample(&self, probs: &[f64], rng: &mut dyn HwRng) -> SampleResult {
        let total = validate(probs);
        if total == 0.0 {
            return SampleResult {
                label: uniform_fallback(probs.len(), rng),
                cycles: self.latency_cycles(probs.len()),
                fallback: true,
            };
        }
        let t = total * rng.next_f64();
        self.sample_with_threshold(probs, t)
    }

    fn sample_with_threshold(&self, probs: &[f64], t: f64) -> SampleResult {
        let total = validate(probs);
        assert!(
            (0.0..total.max(f64::MIN_POSITIVE)).contains(&t),
            "threshold out of range"
        );
        let mut acc = 0.0;
        let mut label = probs.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if acc > t {
                label = i;
                break;
            }
        }
        SampleResult {
            label,
            cycles: self.latency_cycles(probs.len()),
            fallback: false,
        }
    }

    fn latency_cycles(&self, n: usize) -> u64 {
        2 * n as u64 + 1
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_2n_plus_1() {
        let s = SequentialSampler::new();
        assert_eq!(s.latency_cycles(2), 5);
        assert_eq!(s.latency_cycles(64), 129);
        assert_eq!(s.latency_cycles(128), 257);
    }

    #[test]
    fn picks_first_bucket_exceeding_threshold() {
        let s = SequentialSampler::new();
        let probs = [0.25, 0.25, 0.5];
        assert_eq!(s.sample_with_threshold(&probs, 0.24).label, 0);
        assert_eq!(s.sample_with_threshold(&probs, 0.26).label, 1);
        assert_eq!(s.sample_with_threshold(&probs, 0.75).label, 2);
    }

    #[test]
    #[should_panic(expected = "threshold out of range")]
    fn threshold_at_total_panics() {
        let s = SequentialSampler::new();
        let _ = s.sample_with_threshold(&[0.5, 0.5], 1.0);
    }
}
