//! The TreeSampler micro-architecture (paper Fig. 8).

use coopmc_rng::HwRng;

use crate::{uniform_fallback, validate, SampleResult, SampleScratch, Sampler};

/// The *TreeSum* module: a binary adder tree holding the partial sums of a
/// probability vector.
///
/// Level 0 is the leaves (the padded probability vector); level `d` holds
/// sums of `2^d` consecutive leaves; the root is the total mass. The layout
/// is the classic implicit heap used by the RTL: node `(level, i)` sums
/// leaves `[i·2^level, (i+1)·2^level)`.
///
/// All levels live in **one flat buffer** (leaves first, then each level in
/// ascending order), so a tree can be [`TreeSum::rebuild`]-ed over a new
/// probability vector without touching the allocator — the hot-path
/// requirement of the Gibbs inner loop. A default-constructed `TreeSum` is
/// empty and must be `rebuild`-ed before use.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeSum {
    /// Flat node storage: `2·padded − 1` values. Leaves occupy
    /// `[0, padded)`; level `d ≥ 1` starts at `2·padded − (padded >> (d−1))`.
    nodes: Vec<f64>,
    /// Number of physical leaf slots (the probability vector zero-padded to
    /// the next power of two, exactly as the hardware ties off unused
    /// leaves). Zero only for the empty default tree.
    padded: usize,
}

impl TreeSum {
    /// Build the adder tree over `probs`.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty.
    pub fn build(probs: &[f64]) -> Self {
        let mut tree = TreeSum::default();
        tree.rebuild(probs);
        tree
    }

    /// Recompute the tree over a new probability vector, reusing the node
    /// buffer. Allocates only when `probs` needs a larger padded size than
    /// any vector seen before.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty.
    pub fn rebuild(&mut self, probs: &[f64]) {
        assert!(!probs.is_empty(), "TreeSum requires at least one leaf");
        let padded = probs.len().next_power_of_two();
        self.padded = padded;
        self.nodes.resize(2 * padded - 1, 0.0);
        self.nodes[..probs.len()].copy_from_slice(probs);
        self.nodes[probs.len()..padded].fill(0.0);
        let mut src = 0usize;
        for level in 1..=self.depth() {
            let dst = self.level_offset(level);
            let width = padded >> level;
            for i in 0..width {
                self.nodes[dst + i] = self.nodes[src + 2 * i] + self.nodes[src + 2 * i + 1];
            }
            src = dst;
        }
    }

    /// Start of `level` within the flat node buffer.
    fn level_offset(&self, level: usize) -> usize {
        if level == 0 {
            0
        } else {
            2 * self.padded - (self.padded >> (level - 1))
        }
    }

    /// Total probability mass (the root node).
    ///
    /// # Panics
    ///
    /// Panics on an empty (default-constructed, never rebuilt) tree.
    pub fn total(&self) -> f64 {
        *self.nodes.last().expect("empty TreeSum")
    }

    /// Number of tree levels above the leaves (`⌈log₂ N⌉`).
    pub fn depth(&self) -> usize {
        self.padded.trailing_zeros() as usize
    }

    /// Number of physical leaf slots (padded size).
    pub fn leaf_count(&self) -> usize {
        self.padded
    }

    /// Number of adder nodes (`leaf_count - 1`).
    pub fn adder_count(&self) -> usize {
        self.leaf_count() - 1
    }

    /// Partial sum at `(level, index)`.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `index` is out of range.
    pub fn node(&self, level: usize, index: usize) -> f64 {
        assert!(level <= self.depth(), "level {level} out of range");
        assert!(
            index < self.padded >> level,
            "index {index} out of range at level {level}"
        );
        self.nodes[self.level_offset(level) + index]
    }

    /// The *TraverseTree* walk: descend from the root comparing the carried
    /// threshold against the left child; go left if `t < left`, otherwise
    /// subtract `left` and go right (Fig. 8). Returns the selected leaf.
    pub fn traverse(&self, mut t: f64) -> usize {
        let mut index = 0usize;
        for level in (1..=self.depth()).rev() {
            let left = self.nodes[self.level_offset(level - 1) + index * 2];
            if t < left {
                index *= 2;
            } else {
                t -= left;
                index = index * 2 + 1;
            }
        }
        index
    }
}

/// The paper's TreeSampler: TreeSum + ThresholdGen + TraverseTree.
///
/// Latency: `⌈log₂N⌉` cycles for the adder tree to settle, the
/// ThresholdGen multiply, and `⌈log₂N⌉` cycles for the comparator walk —
/// `2⌈log₂N⌉ + 3` in total (the constant covering threshold generation and
/// output registration). At 64 labels this is 15 cycles against the
/// sequential sampler's 129, the ≈8.7× speedup of §IV-C.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeSampler;

impl TreeSampler {
    /// Create a tree sampler.
    pub fn new() -> Self {
        Self
    }
}

impl Sampler for TreeSampler {
    fn sample(&self, probs: &[f64], rng: &mut dyn HwRng) -> SampleResult {
        // Thin wrapper over the scratch-reusing hot path.
        let mut scratch = SampleScratch::new();
        self.sample_into(probs, rng, &mut scratch)
    }

    fn sample_into(
        &self,
        probs: &[f64],
        rng: &mut dyn HwRng,
        scratch: &mut SampleScratch,
    ) -> SampleResult {
        let total = validate(probs);
        if total == 0.0 {
            return SampleResult {
                label: uniform_fallback(probs.len(), rng),
                cycles: self.latency_cycles(probs.len()),
                fallback: true,
            };
        }
        // ThresholdGen: total mass times a uniform draw from the PRNG.
        let t = total * rng.next_f64();
        scratch.tree.rebuild(probs);
        let label = scratch.tree.traverse(t).min(probs.len() - 1);
        SampleResult {
            label,
            cycles: self.latency_cycles(probs.len()),
            fallback: false,
        }
    }

    fn sample_with_threshold(&self, probs: &[f64], t: f64) -> SampleResult {
        let total = validate(probs);
        assert!(
            (0.0..total.max(f64::MIN_POSITIVE)).contains(&t),
            "threshold out of range"
        );
        let tree = TreeSum::build(probs);
        let label = tree.traverse(t).min(probs.len() - 1);
        SampleResult {
            label,
            cycles: self.latency_cycles(probs.len()),
            fallback: false,
        }
    }

    fn latency_cycles(&self, n: usize) -> u64 {
        let depth = (n.next_power_of_two().trailing_zeros()) as u64;
        2 * depth.max(1) + 3
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopmc_rng::SplitMix64;

    #[test]
    fn tree_sum_totals_and_structure() {
        let t = TreeSum::build(&[0.1, 0.2, 0.3, 0.4]);
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.adder_count(), 3);
        assert!((t.node(1, 0) - 0.3).abs() < 1e-12);
        assert!((t.node(1, 1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn padding_to_power_of_two() {
        let t = TreeSum::build(&[1.0, 2.0, 3.0]);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.node(0, 3), 0.0);
        assert_eq!(t.total(), 6.0);
    }

    #[test]
    fn rebuild_reuses_buffer_and_matches_build() {
        let mut tree = TreeSum::build(&[0.5; 64]);
        let cap = {
            tree.rebuild(&[1.0, 2.0, 3.0, 4.0, 5.0]);
            tree.nodes.capacity()
        };
        // A same-or-smaller vector must not grow the buffer.
        tree.rebuild(&[0.2, 0.3, 0.5]);
        assert_eq!(tree.nodes.capacity(), cap);
        assert_eq!(tree, TreeSum::build(&[0.2, 0.3, 0.5]));
    }

    #[test]
    fn single_leaf_tree() {
        let t = TreeSum::build(&[3.5]);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.total(), 3.5);
        assert_eq!(t.traverse(1.0), 0);
    }

    #[test]
    fn traverse_implements_cdf_inverse() {
        let t = TreeSum::build(&[0.2, 0.3, 0.5]);
        assert_eq!(t.traverse(0.0), 0);
        assert_eq!(t.traverse(0.19), 0);
        assert_eq!(t.traverse(0.2), 1);
        assert_eq!(t.traverse(0.49), 1);
        assert_eq!(t.traverse(0.5), 2);
        assert_eq!(t.traverse(0.99), 2);
    }

    #[test]
    fn traverse_never_lands_on_padding() {
        // Padding leaves carry zero mass: any t < total avoids them.
        let probs = [0.5, 0.25, 0.25];
        let tree = TreeSum::build(&probs);
        for k in 0..100 {
            let t = 0.999999 * (k as f64) / 100.0;
            assert!(tree.traverse(t) < 3, "landed on padding for t={t}");
        }
    }

    #[test]
    fn sample_into_agrees_with_threshold_core() {
        let probs = [0.05, 0.3, 0.15, 0.25, 0.25];
        let sampler = TreeSampler::new();
        let mut scratch = SampleScratch::new();
        let mut rng_a = SplitMix64::new(99);
        let mut rng_b = SplitMix64::new(99);
        for _ in 0..100 {
            let a = sampler.sample(&probs, &mut rng_a);
            let b = sampler.sample_into(&probs, &mut rng_b, &mut scratch);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn latency_is_2logn_plus_3() {
        let s = TreeSampler::new();
        assert_eq!(s.latency_cycles(2), 5);
        assert_eq!(s.latency_cycles(64), 15);
        assert_eq!(s.latency_cycles(128), 17);
        // non-power-of-two rounds the depth up
        assert_eq!(s.latency_cycles(65), 17);
    }

    #[test]
    fn speedup_at_64_labels_matches_paper() {
        // 129 / 15 = 8.6 — the paper's "8.7x" headline at 64 labels.
        let seq = crate::SequentialSampler::new();
        let tree = TreeSampler::new();
        let speedup = seq.latency_cycles(64) as f64 / tree.latency_cycles(64) as f64;
        assert!((speedup - 8.6).abs() < 0.1);
    }

    #[test]
    fn step_function_speedup_between_powers_of_two() {
        // §IV-C: between two powers of two the tree latency is constant.
        let tree = TreeSampler::new();
        assert_eq!(tree.latency_cycles(65), tree.latency_cycles(128));
        assert_eq!(tree.latency_cycles(33), tree.latency_cycles(64));
    }
}
