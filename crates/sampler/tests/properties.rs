//! Property-based tests: the three sampler micro-architectures are
//! statistically identical implementations of CDF-inversion sampling
//! (deterministic generator harness from `coopmc-testkit`).

use coopmc_rng::SplitMix64;
use coopmc_sampler::{
    PipeTreeSampler, SampleScratch, Sampler, SequentialSampler, TreeSampler, TreeSum,
};
use coopmc_testkit::{check, Gen};

fn arb_probs(g: &mut Gen) -> Vec<f64> {
    loop {
        let v = g.vec_f64(1, 130, 0.0, 10.0);
        if v.iter().sum::<f64>() > 0.0 {
            return v;
        }
    }
}

#[test]
fn tree_equals_sequential() {
    check("tree_equals_sequential", 256, |g| {
        let probs = arb_probs(g);
        let total: f64 = probs.iter().sum();
        let t = g.f64_in(0.0, 0.9999) * total;
        let seq = SequentialSampler::new()
            .sample_with_threshold(&probs, t)
            .label;
        let tree = TreeSampler::new().sample_with_threshold(&probs, t).label;
        let pipe = PipeTreeSampler::new()
            .sample_with_threshold(&probs, t)
            .label;
        assert_eq!(seq, tree);
        assert_eq!(seq, pipe);
    });
}

#[test]
fn selected_label_has_mass() {
    check("selected_label_has_mass", 256, |g| {
        let probs = arb_probs(g);
        let mut rng = SplitMix64::new(g.u64());
        for s in [
            &TreeSampler::new() as &dyn Sampler,
            &SequentialSampler::new(),
        ] {
            let l = s.sample(&probs, &mut rng).label;
            assert!(probs[l] > 0.0, "label {l} has zero weight");
        }
    });
}

#[test]
fn tree_sum_is_consistent() {
    check("tree_sum_is_consistent", 256, |g| {
        let probs = arb_probs(g);
        let tree = TreeSum::build(&probs);
        let total: f64 = probs.iter().sum();
        assert!((tree.total() - total).abs() < 1e-9 * total.max(1.0));
        for level in 1..=tree.depth() {
            let width = tree.leaf_count() >> level;
            for i in 0..width {
                let parent = tree.node(level, i);
                let kids = tree.node(level - 1, 2 * i) + tree.node(level - 1, 2 * i + 1);
                assert!((parent - kids).abs() < 1e-9);
            }
        }
    });
}

#[test]
fn latency_laws() {
    check("latency_laws", 256, |g| {
        let n = g.usize_in(2, 4096);
        let seq = SequentialSampler::new();
        let tree = TreeSampler::new();
        assert_eq!(seq.latency_cycles(n), 2 * n as u64 + 1);
        let depth = n.next_power_of_two().trailing_zeros() as u64;
        assert_eq!(tree.latency_cycles(n), 2 * depth + 3);
        assert!(tree.latency_cycles(n) <= seq.latency_cycles(n));
    });
}

#[test]
fn alias_table_encodes_exactly() {
    check("alias_table_encodes_exactly", 128, |g| {
        let probs = {
            let v = g.vec_f64(2, 64, 0.0, 10.0);
            if v.iter().sum::<f64>() <= 1e-6 {
                return;
            }
            v
        };
        let table = coopmc_sampler::AliasTable::build(&probs);
        let total: f64 = probs.iter().sum();
        let encoded = table.encoded_distribution();
        for (p, e) in probs.iter().zip(&encoded) {
            assert!((p / total - e).abs() < 1e-9, "want {} got {e}", p / total);
        }
    });
}

#[test]
fn threshold_segment_consistency() {
    check("threshold_segment_consistency", 256, |g| {
        let probs = g.vec_f64(2, 40, 0.01, 5.0);
        let i = g.index(probs.len());
        let frac = g.f64_in(0.0, 0.999);
        let before: f64 = probs[..i].iter().sum();
        let t = before + probs[i] * frac;
        let got = TreeSampler::new().sample_with_threshold(&probs, t).label;
        assert_eq!(got, i);
    });
}

/// `sample_into` (the scratch-reusing hot-path API) draws exactly the same
/// label stream as the allocating `sample` under identical RNG state.
#[test]
fn sample_into_matches_sample() {
    check("sample_into_matches_sample", 128, |g| {
        let probs = arb_probs(g);
        let seed = g.u64();
        let mut scratch = SampleScratch::new();
        for s in [
            &TreeSampler::new() as &dyn Sampler,
            &SequentialSampler::new(),
            &PipeTreeSampler::new(),
        ] {
            let mut rng_a = SplitMix64::new(seed);
            let mut rng_b = SplitMix64::new(seed);
            for _ in 0..16 {
                let plain = s.sample(&probs, &mut rng_a);
                let scratched = s.sample_into(&probs, &mut rng_b, &mut scratch);
                assert_eq!(plain, scratched, "{} diverged", s.name());
            }
        }
    });
}

/// A deterministic empirical check that the tree sampler's draws follow the
/// distribution (Kolmogorov–Smirnov-style max deviation on the CDF).
#[test]
fn empirical_cdf_deviation_small() {
    let probs: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    let total: f64 = probs.iter().sum();
    let mut rng = SplitMix64::new(2024);
    let sampler = TreeSampler::new();
    let draws = 60_000;
    let mut counts = vec![0u64; probs.len()];
    for _ in 0..draws {
        counts[sampler.sample(&probs, &mut rng).label] += 1;
    }
    let mut cdf_err: f64 = 0.0;
    let mut emp = 0.0;
    let mut exact = 0.0;
    for (c, p) in counts.iter().zip(&probs) {
        emp += *c as f64 / draws as f64;
        exact += p / total;
        cdf_err = cdf_err.max((emp - exact).abs());
    }
    assert!(cdf_err < 0.01, "max CDF deviation {cdf_err}");
}
