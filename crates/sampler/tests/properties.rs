//! Property-based tests: the three sampler micro-architectures are
//! statistically identical implementations of CDF-inversion sampling.

use coopmc_rng::SplitMix64;
use coopmc_sampler::{PipeTreeSampler, Sampler, SequentialSampler, TreeSampler, TreeSum};
use proptest::prelude::*;

fn arb_probs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, 1..130)
        .prop_filter("need some mass", |v| v.iter().sum::<f64>() > 0.0)
}

proptest! {
    /// Tree traversal equals the sequential scan for every threshold —
    /// the micro-architectures implement the same function.
    #[test]
    fn tree_equals_sequential(probs in arb_probs(), u in 0.0f64..0.9999) {
        let total: f64 = probs.iter().sum();
        let t = u * total;
        let seq = SequentialSampler::new().sample_with_threshold(&probs, t).label;
        let tree = TreeSampler::new().sample_with_threshold(&probs, t).label;
        let pipe = PipeTreeSampler::new().sample_with_threshold(&probs, t).label;
        prop_assert_eq!(seq, tree);
        prop_assert_eq!(seq, pipe);
    }

    /// The selected label always has positive weight.
    #[test]
    fn selected_label_has_mass(probs in arb_probs(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        for s in [&TreeSampler::new() as &dyn Sampler, &SequentialSampler::new()] {
            let l = s.sample(&probs, &mut rng).label;
            prop_assert!(probs[l] > 0.0, "label {l} has zero weight");
        }
    }

    /// TreeSum's root equals the plain sum and every internal node equals
    /// the sum of its children.
    #[test]
    fn tree_sum_is_consistent(probs in arb_probs()) {
        let tree = TreeSum::build(&probs);
        let total: f64 = probs.iter().sum();
        prop_assert!((tree.total() - total).abs() < 1e-9 * total.max(1.0));
        for level in 1..=tree.depth() {
            let width = tree.leaf_count() >> level;
            for i in 0..width {
                let parent = tree.node(level, i);
                let kids = tree.node(level - 1, 2 * i) + tree.node(level - 1, 2 * i + 1);
                prop_assert!((parent - kids).abs() < 1e-9);
            }
        }
    }

    /// Latency laws: sequential is linear, tree is logarithmic, and the
    /// crossover is monotone.
    #[test]
    fn latency_laws(n in 2usize..4096) {
        let seq = SequentialSampler::new();
        let tree = TreeSampler::new();
        prop_assert_eq!(seq.latency_cycles(n), 2 * n as u64 + 1);
        let depth = n.next_power_of_two().trailing_zeros() as u64;
        prop_assert_eq!(tree.latency_cycles(n), 2 * depth + 3);
        prop_assert!(tree.latency_cycles(n) <= seq.latency_cycles(n));
    }

    /// The alias table encodes exactly the input distribution, for any
    /// positive weight vector.
    #[test]
    fn alias_table_encodes_exactly(
        probs in prop::collection::vec(0.0f64..10.0, 2..64)
            .prop_filter("mass", |v| v.iter().sum::<f64>() > 1e-6),
    ) {
        let table = coopmc_sampler::AliasTable::build(&probs);
        let total: f64 = probs.iter().sum();
        let encoded = table.encoded_distribution();
        for (p, e) in probs.iter().zip(&encoded) {
            prop_assert!((p / total - e).abs() < 1e-9, "want {} got {e}", p / total);
        }
    }

    /// Thresholds inside a label's CDF segment always return that label.
    #[test]
    fn threshold_segment_consistency(
        probs in prop::collection::vec(0.01f64..5.0, 2..40),
        idx in any::<prop::sample::Index>(),
        frac in 0.0f64..0.999,
    ) {
        let i = idx.index(probs.len());
        let before: f64 = probs[..i].iter().sum();
        let t = before + probs[i] * frac;
        let got = TreeSampler::new().sample_with_threshold(&probs, t).label;
        prop_assert_eq!(got, i);
    }
}

/// A deterministic empirical check that the tree sampler's draws follow the
/// distribution (Kolmogorov–Smirnov-style max deviation on the CDF).
#[test]
fn empirical_cdf_deviation_small() {
    let probs: Vec<f64> = (1..=16).map(|i| i as f64).collect();
    let total: f64 = probs.iter().sum();
    let mut rng = SplitMix64::new(2024);
    let sampler = TreeSampler::new();
    let draws = 60_000;
    let mut counts = vec![0u64; probs.len()];
    for _ in 0..draws {
        counts[sampler.sample(&probs, &mut rng).label] += 1;
    }
    let mut cdf_err: f64 = 0.0;
    let mut emp = 0.0;
    let mut exact = 0.0;
    for (c, p) in counts.iter().zip(&probs) {
        emp += *c as f64 / draws as f64;
        exact += p / total;
        cdf_err = cdf_err.max((emp - exact).abs());
    }
    assert!(cdf_err < 0.01, "max CDF deviation {cdf_err}");
}
