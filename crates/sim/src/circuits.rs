//! Structural circuits for the paper's micro-architecture diagrams.

use std::rc::Rc;

use coopmc_kernels::exp::{ExpKernel, TableExp};

use crate::descriptor::{CircuitDescriptor, DescriptorBuilder};
use crate::netlist::{LutSpec, Netlist, Wire};

/// Recursive binary mux selecting one of `candidates` by `bits`
/// (most-significant selector first). `candidates.len()` must be
/// `2^bits.len()`.
fn mux_select(n: &mut Netlist, candidates: &[Wire], bits: &[Wire]) -> Wire {
    assert_eq!(candidates.len(), 1 << bits.len(), "mux arity mismatch");
    if bits.is_empty() {
        return candidates[0];
    }
    let half = candidates.len() / 2;
    let lo = mux_select(n, &candidates[..half], &bits[1..]);
    let hi = mux_select(n, &candidates[half..], &bits[1..]);
    n.mux(bits[0], lo, hi)
}

/// The pipelined NormTree (Fig. 3): a comparator tree with a register after
/// every layer. A new input vector can enter every cycle; the maximum
/// appears `depth` cycles later.
#[derive(Debug)]
pub struct NormTreeCircuit {
    netlist: Netlist,
    inputs: Vec<Wire>,
    output: Wire,
    depth: usize,
    descriptor: CircuitDescriptor,
}

impl NormTreeCircuit {
    /// Build a tree over `width` inputs (must be a power of two ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is below 2.
    pub fn new(width: usize) -> Self {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "width must be a power of two >= 2"
        );
        let mut n = Netlist::new();
        let mut b = DescriptorBuilder::new(&n, format!("norm-tree-{width}"), "norm-tree");
        let inputs: Vec<Wire> = (0..width).map(|_| n.input()).collect();
        for (i, &w) in inputs.iter().enumerate() {
            b.pin_in(format!("in{i}"), w);
        }
        let mut layer = inputs.clone();
        let mut depth = 0;
        while layer.len() > 1 {
            b.begin(&n, format!("layer{depth}"), "max-layer");
            b.param("pairs", layer.len() / 2);
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                let m = n.max(pair[0], pair[1]);
                next.push(n.register(m));
            }
            b.end(&n);
            layer = next;
            depth += 1;
        }
        b.pin_out("max", layer[0]);
        b.param("width", width);
        b.param("depth", depth);
        let descriptor = b.finish(&n);
        Self {
            netlist: n,
            inputs,
            output: layer[0],
            depth,
            descriptor,
        }
    }

    /// Pipeline depth in cycles.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The underlying netlist (read-only, for static analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The leaf input wires.
    pub fn input_wires(&self) -> &[Wire] {
        &self.inputs
    }

    /// The registered root (maximum) wire.
    pub fn output_wire(&self) -> Wire {
        self.output
    }

    /// The netlist-derived structural descriptor (one `max-layer` child per
    /// pipeline stage). Its census *is* the circuit's component census.
    pub fn descriptor(&self) -> &CircuitDescriptor {
        &self.descriptor
    }

    /// Clock one cycle with a fresh input vector; returns the tree output
    /// registered this cycle (valid for the vector fed `depth` cycles ago).
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong width.
    pub fn step(&mut self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.inputs.len(), "input width mismatch");
        let inputs: Vec<(Wire, f64)> = self
            .inputs
            .iter()
            .copied()
            .zip(values.iter().copied())
            .collect();
        self.netlist.step(&inputs);
        self.netlist.value(self.output)
    }
}

/// The fused PG core (Fig. 6): per-lane factor adder chains, the shared
/// NormTree, the broadcast subtract and the TableExp ROMs — combinational,
/// for output-equivalence against the behavioral `LogFusion` datapath.
#[derive(Debug)]
pub struct PgCoreCircuit {
    netlist: Netlist,
    factor_inputs: Vec<Vec<Wire>>,
    outputs: Vec<Wire>,
    descriptor: CircuitDescriptor,
}

impl PgCoreCircuit {
    /// Build a core with `lanes` parallel pipelines (power of two ≥ 2),
    /// `factors` log-domain factor inputs per lane, and the given TableExp
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a power of two ≥ 2 or `factors == 0`.
    pub fn new(lanes: usize, factors: usize, size_lut: usize, bit_lut: u32) -> Self {
        assert!(
            lanes >= 2 && lanes.is_power_of_two(),
            "lanes must be a power of two >= 2"
        );
        assert!(factors > 0, "need at least one factor per lane");
        let table = Rc::new(TableExp::new(size_lut, bit_lut));
        let mut n = Netlist::new();
        let mut b = DescriptorBuilder::new(
            &n,
            format!("pg-core-{lanes}x{factors}-{size_lut}x{bit_lut}"),
            "pg-core",
        );
        let mut factor_inputs = Vec::with_capacity(lanes);
        let mut scores = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            b.begin(&n, format!("lane{lane}"), "factor-chain");
            b.param("factors", factors);
            let ins: Vec<Wire> = (0..factors).map(|_| n.input()).collect();
            for (k, &w) in ins.iter().enumerate() {
                b.pin_in(format!("f{k}"), w);
            }
            // Adder chain accumulating the lane's log-domain factors.
            let mut acc = ins[0];
            for &w in &ins[1..] {
                acc = n.add(acc, w);
            }
            b.pin_out("score", acc);
            b.end(&n);
            scores.push(acc);
            factor_inputs.push(ins);
        }
        // NormTree (combinational here; the pipelined variant is the
        // standalone NormTreeCircuit).
        b.begin(&n, "norm", "norm-tree");
        b.param("width", lanes);
        let mut layer = scores.clone();
        let mut norm_depth = 0;
        while layer.len() > 1 {
            b.begin(&n, format!("layer{norm_depth}"), "max-layer");
            b.param("pairs", layer.len() / 2);
            layer = layer.chunks(2).map(|p| n.max(p[0], p[1])).collect();
            b.end(&n);
            norm_depth += 1;
        }
        let max = layer[0];
        b.param("depth", norm_depth);
        b.pin_out("max", max);
        b.end(&n);
        // Broadcast subtract + TableExp per lane.
        b.begin(&n, "exp", "exp-stage");
        b.param("lanes", lanes);
        let outputs: Vec<Wire> = scores
            .iter()
            .map(|&s| {
                let shifted = n.sub(s, max);
                let t = Rc::clone(&table);
                n.lut(
                    shifted,
                    LutSpec::new("table-exp", size_lut, bit_lut, Rc::new(move |x| t.exp(x))),
                )
            })
            .collect();
        b.end(&n);
        for (i, &w) in outputs.iter().enumerate() {
            b.pin_out(format!("p{i}"), w);
        }
        b.param("lanes", lanes);
        b.param("factors", factors);
        b.param("size-lut", size_lut);
        b.param("bit-lut", bit_lut as usize);
        let descriptor = b.finish(&n);
        Self {
            netlist: n,
            factor_inputs,
            outputs,
            descriptor,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.outputs.len()
    }

    /// The underlying netlist (read-only, for static analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Per-lane factor input wires.
    pub fn factor_wires(&self) -> &[Vec<Wire>] {
        &self.factor_inputs
    }

    /// Per-lane unnormalized-probability output wires.
    pub fn output_wires(&self) -> &[Wire] {
        &self.outputs
    }

    /// The netlist-derived structural descriptor: per-lane `factor-chain`
    /// children, a nested `norm-tree`, and the `exp-stage` holding the
    /// broadcast subtractors and the named `table-exp` ROMs.
    pub fn descriptor(&self) -> &CircuitDescriptor {
        &self.descriptor
    }

    /// Evaluate one probability vector: `factors[lane][k]` are the
    /// log-domain factor values. Returns the unnormalized probabilities.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn evaluate(&mut self, factors: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(
            factors.len(),
            self.factor_inputs.len(),
            "lane count mismatch"
        );
        let mut inputs = Vec::new();
        for (lane, vals) in self.factor_inputs.iter().zip(factors) {
            assert_eq!(lane.len(), vals.len(), "factor count mismatch");
            inputs.extend(lane.iter().copied().zip(vals.iter().copied()));
        }
        self.netlist.step(&inputs);
        self.outputs
            .iter()
            .map(|&w| self.netlist.value(w))
            .collect()
    }
}

/// The TreeSampler datapath (Fig. 8): TreeSum adder tree plus the
/// TraverseTree comparator walk, built structurally with explicit muxes.
///
/// The threshold is an external input (in the real design it comes from
/// ThresholdGen = total × PRNG draw), which makes the circuit exactly
/// comparable against the behavioral samplers' `sample_with_threshold`.
#[derive(Debug)]
pub struct TreeSamplerCircuit {
    netlist: Netlist,
    leaves: Vec<Wire>,
    threshold: Wire,
    label_out: Wire,
    total_out: Wire,
    n_labels: usize,
    descriptor: CircuitDescriptor,
}

impl TreeSamplerCircuit {
    /// Build a sampler over `n_labels` leaves (padded to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_labels < 2`.
    pub fn new(n_labels: usize) -> Self {
        assert!(n_labels >= 2, "need at least two labels");
        let padded = n_labels.next_power_of_two();
        let depth = padded.trailing_zeros() as usize;
        let mut n = Netlist::new();
        let mut b = DescriptorBuilder::new(&n, format!("tree-sampler-{n_labels}"), "tree-sampler");
        let leaves: Vec<Wire> = (0..n_labels).map(|_| n.input()).collect();
        for (i, &w) in leaves.iter().enumerate() {
            b.pin_in(format!("leaf{i}"), w);
        }
        let zero = n.constant(0.0);
        let mut padded_leaves = leaves.clone();
        padded_leaves.resize(padded, zero);

        // TreeSum: sums[level][i] = sum of the 2^level-leaf block at i<<level.
        b.begin(&n, "sum", "tree-sum");
        b.param("padded", padded);
        b.param("depth", depth);
        let mut sums: Vec<Vec<Wire>> = vec![padded_leaves];
        for l in 0..depth {
            let prev = sums.last().unwrap().clone();
            b.begin(&n, format!("level{l}"), "sum-layer");
            b.param("pairs", prev.len() / 2);
            let next: Vec<Wire> = prev.chunks(2).map(|p| n.add(p[0], p[1])).collect();
            b.end(&n);
            sums.push(next);
        }
        let total = sums[depth][0];
        b.pin_out("total", total);
        b.end(&n);
        let threshold = n.input();
        b.pin_in("threshold", threshold);

        // TraverseTree: walk from the root, selecting the left-child sum
        // through a mux tree addressed by the bits chosen so far.
        b.begin(&n, "traverse", "tree-traverse");
        b.param("depth", depth);
        let mut t = threshold;
        let mut bits: Vec<Wire> = Vec::with_capacity(depth);
        for k in 0..depth {
            let level = depth - 1 - k; // children level of the current node
                                       // Left children of the 2^k candidate nodes: even indices.
            let candidates: Vec<Wire> = (0..(1 << k)).map(|j| sums[level][2 * j]).collect();
            b.begin(&n, format!("step{k}"), "traverse-step");
            b.param("candidates", 1 << k);
            let left = mux_select(&mut n, &candidates, &bits);
            let go_right = n.ge(t, left);
            let t_minus = n.sub(t, left);
            t = n.mux(go_right, t, t_minus);
            b.pin_out("bit", go_right);
            b.end(&n);
            bits.push(go_right);
        }
        b.pin_out("remainder", t);
        b.end(&n);
        // Label = Σ bit_k · 2^(depth-1-k).
        b.begin(&n, "label", "label-decode");
        b.param("bits", depth);
        let mut label = zero;
        for (k, &bit) in bits.iter().enumerate() {
            let weight = n.constant((1usize << (depth - 1 - k)) as f64);
            let contrib = n.mux(bit, zero, weight);
            label = n.add(label, contrib);
        }
        b.end(&n);
        b.pin_out("label", label);
        b.param("labels", n_labels);
        b.param("padded", padded);
        b.param("depth", depth);
        let descriptor = b.finish(&n);
        Self {
            netlist: n,
            leaves,
            threshold,
            label_out: label,
            total_out: total,
            n_labels,
            descriptor,
        }
    }

    /// The underlying netlist (read-only, for static analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The probability leaf input wires.
    pub fn leaf_wires(&self) -> &[Wire] {
        &self.leaves
    }

    /// The external threshold input wire.
    pub fn threshold_wire(&self) -> Wire {
        self.threshold
    }

    /// The selected-label output wire.
    pub fn label_wire(&self) -> Wire {
        self.label_out
    }

    /// The total-mass (TreeSum root) wire.
    pub fn total_wire(&self) -> Wire {
        self.total_out
    }

    /// The netlist-derived structural descriptor: `tree-sum` levels,
    /// `traverse-step`s (each exporting its decision `bit` pin) and the
    /// `label-decode` stage.
    pub fn descriptor(&self) -> &CircuitDescriptor {
        &self.descriptor
    }

    /// Evaluate: select the label for `probs` under threshold `t`.
    ///
    /// # Panics
    ///
    /// Panics if `probs` has the wrong length or `t` is outside
    /// `[0, total)`.
    pub fn sample(&mut self, probs: &[f64], t: f64) -> usize {
        assert_eq!(probs.len(), self.n_labels, "distribution size mismatch");
        let mut inputs: Vec<(Wire, f64)> = self
            .leaves
            .iter()
            .copied()
            .zip(probs.iter().copied())
            .collect();
        inputs.push((self.threshold, t));
        self.netlist.step(&inputs);
        let total = self.netlist.value(self.total_out);
        assert!(t >= 0.0 && t < total, "threshold out of range");
        let label = self.netlist.value(self.label_out) as usize;
        label.min(self.n_labels - 1)
    }

    /// Total probability mass from the last evaluation.
    pub fn total(&self) -> f64 {
        self.netlist.value(self.total_out)
    }
}

/// The pipelined TreeSampler (the PipeTreeSampler of §III-D): registers
/// after every TreeSum level, shift registers carrying each level's sums to
/// the traverse stage that consumes them, and a registered traverse chain —
/// a new `(probs, threshold)` pair can enter **every cycle**, with labels
/// emerging one per cycle after the pipeline fills.
///
/// Stage timing: the level-`L` sums are registered at stage `L + 1`;
/// traverse step `k` (consuming the level `depth-1-k` sums) executes at
/// stage `depth + 1 + k`, so each level's sums ride a shift register of
/// `2·(depth - L)` stages. Total latency: `2·depth + 1` cycles.
#[derive(Debug)]
pub struct PipeTreeSamplerCircuit {
    netlist: Netlist,
    leaves: Vec<Wire>,
    threshold: Wire,
    label_out: Wire,
    n_labels: usize,
    latency: usize,
    descriptor: CircuitDescriptor,
}

impl PipeTreeSamplerCircuit {
    /// Build a pipelined sampler over `n_labels` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `n_labels < 2`.
    pub fn new(n_labels: usize) -> Self {
        assert!(n_labels >= 2, "need at least two labels");
        let padded = n_labels.next_power_of_two();
        let depth = padded.trailing_zeros() as usize;
        let mut n = Netlist::new();
        let mut b = DescriptorBuilder::new(
            &n,
            format!("pipe-tree-sampler-{n_labels}"),
            "pipe-tree-sampler",
        );
        let leaves: Vec<Wire> = (0..n_labels).map(|_| n.input()).collect();
        for (i, &w) in leaves.iter().enumerate() {
            b.pin_in(format!("leaf{i}"), w);
        }
        let threshold = n.input();
        b.pin_in("threshold", threshold);
        let zero = n.constant(0.0);
        let mut padded_leaves = leaves.clone();
        padded_leaves.resize(padded, zero);

        // Registered TreeSum: sums[L] are valid at stage L (leaves at 0).
        b.begin(&n, "sum", "tree-sum");
        b.param("padded", padded);
        b.param("depth", depth);
        let mut sums: Vec<Vec<Wire>> = vec![padded_leaves];
        for l in 0..depth {
            let prev = sums.last().unwrap().clone();
            b.begin(&n, format!("level{l}"), "sum-layer");
            b.param("pairs", prev.len() / 2);
            let next: Vec<Wire> = prev
                .chunks(2)
                .map(|p| {
                    let s = n.add(p[0], p[1]);
                    n.register(s)
                })
                .collect();
            b.end(&n);
            sums.push(next);
        }
        b.pin_out("total", sums[depth][0]);
        b.end(&n);

        // Helper: delay a wire by `k` register stages.
        fn delay(n: &mut Netlist, mut w: Wire, k: usize) -> Wire {
            for _ in 0..k {
                w = n.register(w);
            }
            w
        }

        // Timing (stages counted in clock edges after a pair enters):
        // level-L sums are usable by combinational logic at stage L; the
        // traverse step k computes at stage depth+k, so the level
        // (depth-1-k) sums ride 2k+1 extra shift-register stages and the
        // threshold rides depth of them.
        b.begin(&n, "traverse", "tree-traverse");
        b.param("depth", depth);
        let mut t = delay(&mut n, threshold, depth);
        let mut bits: Vec<Wire> = Vec::with_capacity(depth);
        for k in 0..depth {
            let level = depth - 1 - k;
            b.begin(&n, format!("step{k}"), "traverse-step");
            b.param("candidates", 1 << k);
            let candidates: Vec<Wire> = (0..(1 << k))
                .map(|j| {
                    let w = sums[level][2 * j];
                    delay(&mut n, w, 2 * k + 1)
                })
                .collect();
            // Previously chosen bits, re-timed to this stage (bit i is
            // already registered once at stage depth+i+1).
            let bits_here: Vec<Wire> = bits
                .iter()
                .enumerate()
                .map(|(i, &bw)| delay(&mut n, bw, k - i - 1))
                .collect();
            let left = mux_select(&mut n, &candidates, &bits_here);
            let go_right = n.ge(t, left);
            let t_minus = n.sub(t, left);
            let t_next = n.mux(go_right, t, t_minus);
            t = n.register(t_next);
            let bit_q = n.register(go_right);
            b.pin_out("bit", bit_q);
            b.end(&n);
            bits.push(bit_q);
        }
        b.pin_out("remainder", t);
        b.end(&n);
        // Reconstruct the label at stage 2·depth, re-timing each bit.
        b.begin(&n, "label", "label-decode");
        b.param("bits", depth);
        let mut label = zero;
        let n_bits = bits.len();
        for (k, &bw) in bits.iter().enumerate() {
            let b_aligned = delay(&mut n, bw, n_bits - 1 - k);
            let weight = n.constant((1usize << (depth - 1 - k)) as f64);
            let contrib = n.mux(b_aligned, zero, weight);
            label = n.add(label, contrib);
        }
        b.end(&n);
        b.pin_out("label", label);
        let latency = 2 * depth;
        b.param("labels", n_labels);
        b.param("padded", padded);
        b.param("depth", depth);
        b.param("latency", latency);
        let descriptor = b.finish(&n);
        Self {
            netlist: n,
            leaves,
            threshold,
            label_out: label,
            n_labels,
            latency,
            descriptor,
        }
    }

    /// Pipeline latency in cycles from input to label.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// The underlying netlist (read-only, for static analysis).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The probability leaf input wires.
    pub fn leaf_wires(&self) -> &[Wire] {
        &self.leaves
    }

    /// The external threshold input wire.
    pub fn threshold_wire(&self) -> Wire {
        self.threshold
    }

    /// The selected-label output wire.
    pub fn label_wire(&self) -> Wire {
        self.label_out
    }

    /// The netlist-derived structural descriptor — the same shape as
    /// [`TreeSamplerCircuit::descriptor`] but with the pipeline registers
    /// owned by the stages that instantiate them.
    pub fn descriptor(&self) -> &CircuitDescriptor {
        &self.descriptor
    }

    /// Clock one cycle with a fresh `(probs, threshold)` pair; returns the
    /// label wire's current value (valid for the pair fed [`Self::latency`]
    /// steps earlier, see the streaming test).
    ///
    /// # Panics
    ///
    /// Panics if `probs` has the wrong length.
    pub fn step(&mut self, probs: &[f64], t: f64) -> usize {
        assert_eq!(probs.len(), self.n_labels, "distribution size mismatch");
        let mut inputs: Vec<(Wire, f64)> = self
            .leaves
            .iter()
            .copied()
            .zip(probs.iter().copied())
            .collect();
        inputs.push((self.threshold, t));
        self.netlist.step(&inputs);
        (self.netlist.value(self.label_out) as usize).min(self.n_labels - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopmc_kernels::dynorm::dynorm_apply;
    use coopmc_sampler::{Sampler, TreeSampler};

    #[test]
    fn normtree_pipeline_streams_maxima() {
        let mut tree = NormTreeCircuit::new(4);
        assert_eq!(tree.depth(), 2);
        let vectors = [
            [1.0, 5.0, 2.0, 3.0],
            [9.0, 0.0, 1.0, 2.0],
            [4.0, 4.0, 8.0, 7.0],
            [0.0; 4],
            [0.0; 4],
        ];
        let mut outputs = Vec::new();
        for v in &vectors {
            outputs.push(tree.step(v));
        }
        // `step` returns the post-edge value: after `depth` clock edges the
        // first vector's maximum is registered at the root, so the reading
        // taken at step k corresponds to the vector fed at step k-(depth-1).
        assert_eq!(outputs[1], 5.0);
        assert_eq!(outputs[2], 9.0);
        assert_eq!(outputs[3], 8.0);
    }

    #[test]
    fn normtree_census_matches_structure() {
        let tree = NormTreeCircuit::new(8);
        let c = tree.descriptor().census();
        assert_eq!(c.comparators, 7, "n-1 max units");
        assert_eq!(c.registers, 7, "one register per tree node");
        // The descriptor-derived census is a genuine netlist walk.
        assert_eq!(c, tree.netlist().census());
        // Hierarchy: one max-layer child per pipeline stage.
        let layers = tree.descriptor().children_of_kind("max-layer");
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].counts.comparators, 4);
        assert_eq!(layers[2].counts.comparators, 1);
    }

    #[test]
    fn pg_core_matches_behavioral_dynorm_tableexp() {
        let mut core = PgCoreCircuit::new(4, 3, 64, 8);
        let factors = vec![
            vec![-1.0, -2.0, -0.5],
            vec![-0.25, -3.0, -1.5],
            vec![-2.0, -2.0, -2.0],
            vec![-0.5, -0.5, -0.5],
        ];
        let structural = core.evaluate(&factors);
        // Behavioral reference: sum, DyNorm, TableExp.
        let mut scores: Vec<f64> = factors.iter().map(|f| f.iter().sum()).collect();
        dynorm_apply(&mut scores, 4);
        let table = TableExp::new(64, 8);
        let behavioral: Vec<f64> = scores.iter().map(|&s| table.exp(s)).collect();
        assert_eq!(structural, behavioral);
        // the best lane is pinned at 1.0 by DyNorm
        assert!(structural.contains(&1.0));
    }

    #[test]
    fn pg_core_census() {
        let core = PgCoreCircuit::new(4, 3, 64, 8);
        let c = core.descriptor().census();
        // 4 lanes x 2 chain adders + 4 broadcast subtractors = 12 adders;
        // 3 max units; 4 LUTs.
        assert_eq!(c.adders, 12);
        assert_eq!(c.comparators, 3);
        assert_eq!(c.luts, 4);
    }

    #[test]
    fn tree_sampler_circuit_matches_behavioral_sampler() {
        let probs = [0.05, 0.3, 0.0, 0.15, 0.25, 0.25];
        let behavioral = TreeSampler::new();
        let mut circuit = TreeSamplerCircuit::new(probs.len());
        let total: f64 = probs.iter().sum();
        for k in 0..100 {
            let t = total * (k as f64 + 0.5) / 100.5;
            let want = behavioral.sample_with_threshold(&probs, t).label;
            let got = circuit.sample(&probs, t);
            assert_eq!(got, want, "mismatch at t={t}");
        }
    }

    #[test]
    fn tree_sampler_census_matches_area_model_counts() {
        // The structural netlist and the hw area model must agree on the
        // number of TreeSum adders for the same label count.
        let circuit = TreeSamplerCircuit::new(64);
        let census = circuit.descriptor().census();
        // TreeSum: 63 adders. Traverse: 6 subtractors (one per level).
        // Label reconstruction: 6 adders.
        assert_eq!(census.adders, 63 + 6 + 6);
        // Traverse comparators: one per level.
        assert_eq!(census.comparators, 6);
    }

    #[test]
    fn pipelined_sampler_streams_one_label_per_cycle() {
        // Feed a *different* distribution + threshold every cycle; every
        // label must match the behavioral sampler for its own pair.
        let n_labels = 8usize;
        let mut circuit = PipeTreeSamplerCircuit::new(n_labels);
        let behavioral = TreeSampler::new();
        let latency = circuit.latency();
        assert_eq!(latency, 6, "depth-3 tree: 2*depth cycles");

        let pairs: Vec<(Vec<f64>, f64)> = (0..20)
            .map(|k| {
                let probs: Vec<f64> = (0..n_labels)
                    .map(|i| 0.5 + ((i * 7 + k * 3) % 11) as f64)
                    .collect();
                let total: f64 = probs.iter().sum();
                (probs, total * ((k * 13 % 17) as f64 + 0.5) / 17.5)
            })
            .collect();

        let mut outputs = Vec::new();
        for (probs, t) in &pairs {
            outputs.push(circuit.step(probs, *t));
        }
        // Flush with copies of the last pair.
        let (lp, lt) = pairs.last().unwrap().clone();
        for _ in 0..latency {
            outputs.push(circuit.step(&lp, lt));
        }
        for (k, (probs, t)) in pairs.iter().enumerate() {
            let want = behavioral.sample_with_threshold(probs, *t).label;
            assert_eq!(outputs[k + latency], want, "pair {k} mismatched");
        }
    }

    #[test]
    fn pipelined_sampler_has_more_registers_than_combinational() {
        let pipe = PipeTreeSamplerCircuit::new(64);
        let comb = TreeSamplerCircuit::new(64);
        let pc = pipe.descriptor().census();
        let cc = comb.descriptor().census();
        assert!(pc.registers > 0);
        assert_eq!(cc.registers, 0);
        // Same arithmetic structure: adders and comparators match.
        assert_eq!(pc.comparators, cc.comparators);
    }

    #[test]
    fn tree_sampler_total_is_exposed() {
        let mut circuit = TreeSamplerCircuit::new(3);
        let _ = circuit.sample(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(circuit.total(), 6.0);
    }

    #[test]
    #[should_panic(expected = "threshold out of range")]
    fn threshold_at_total_panics() {
        let mut circuit = TreeSamplerCircuit::new(2);
        let _ = circuit.sample(&[0.5, 0.5], 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_normtree_width_panics() {
        let _ = NormTreeCircuit::new(6);
    }
}
