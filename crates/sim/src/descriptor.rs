//! Typed circuit descriptors: one *derived* structural source of truth.
//!
//! A [`CircuitDescriptor`] names a circuit's pins, its typed component
//! counts and its children (layers, lanes, traverse steps …), composed
//! hierarchically — the PG core's descriptor contains a NormTree
//! descriptor, which contains per-layer descriptors. Crucially the counts
//! are **built from the netlist**, not beside it: circuit constructors
//! bracket each logical block with [`crate::netlist::Mark`]s and the
//! [`DescriptorBuilder`] walks the bracketed component/register slices.
//! There is no hand-kept arithmetic to drift.
//!
//! Downstream, `coopmc-analyze` derives dependence DAGs and the
//! `descriptor-drift` verify section from these descriptors, `coopmc-hw`
//! prices them structurally, and `coopmc verify --export-schematic` renders
//! them as graphviz `.dot` and stable JSON schematics.

use crate::netlist::{ComponentCensus, Mark, Netlist, Wire};

/// Direction of a [`Pin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinDir {
    /// Driven from outside the circuit (a [`Netlist::input`] wire).
    Input,
    /// Observed from outside the circuit (driven inside it).
    Output,
}

/// A named connection point of a descriptor node.
#[derive(Debug, Clone)]
pub struct Pin {
    /// Pin name, unique within its node (e.g. `"threshold"`).
    pub name: String,
    /// The netlist wire the pin is bonded to.
    pub wire: Wire,
    /// Input or output.
    pub dir: PinDir,
}

/// A typed, hierarchical description of a circuit, derived from its
/// [`Netlist`] (see the module docs).
///
/// `counts` and `luts` cover only the hardware this node *itself* owns —
/// what its bracket instantiated minus what its children's brackets
/// claimed. [`CircuitDescriptor::census`] folds the whole subtree.
#[derive(Debug, Clone)]
pub struct CircuitDescriptor {
    /// Instance name (e.g. `"norm-tree-8"`, `"layer1"`).
    pub name: String,
    /// Structural kind (e.g. `"norm-tree"`, `"max-layer"`, `"factor-chain"`).
    pub kind: &'static str,
    /// Named structural parameters (widths, depths, LUT geometry …).
    pub params: Vec<(&'static str, usize)>,
    /// Named pins of this node.
    pub pins: Vec<Pin>,
    /// Component counts owned by this node (children excluded).
    pub counts: ComponentCensus,
    /// LUT ROM ids owned by this node, in build order.
    pub luts: Vec<&'static str>,
    /// Child descriptors, in build order.
    pub children: Vec<CircuitDescriptor>,
}

impl CircuitDescriptor {
    /// Total census of this node and every descendant.
    pub fn census(&self) -> ComponentCensus {
        let mut c = self.counts;
        for child in &self.children {
            c.absorb(child.census());
        }
        c
    }

    /// All LUT ids in the subtree, in build order.
    pub fn all_luts(&self) -> Vec<&'static str> {
        let mut ids = self.luts.clone();
        for child in &self.children {
            ids.extend(child.all_luts());
        }
        ids
    }

    /// Direct child by name.
    pub fn child(&self, name: &str) -> Option<&CircuitDescriptor> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Direct children of a given kind, in build order.
    pub fn children_of_kind(&self, kind: &str) -> Vec<&CircuitDescriptor> {
        self.children.iter().filter(|c| c.kind == kind).collect()
    }

    /// Named parameter value.
    pub fn param(&self, name: &str) -> Option<usize> {
        self.params
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Pin by name on this node.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Every node in the subtree with its `/`-joined path (root path is the
    /// root's name), depth-first in build order.
    pub fn flatten(&self) -> Vec<(String, &CircuitDescriptor)> {
        let mut out = Vec::new();
        self.flatten_into(&self.name.clone(), &mut out);
        out
    }

    fn flatten_into<'a>(&'a self, path: &str, out: &mut Vec<(String, &'a CircuitDescriptor)>) {
        out.push((path.to_string(), self));
        for child in &self.children {
            let p = format!("{path}/{}", child.name);
            child.flatten_into(&p, out);
        }
    }

    /// Every pin in the subtree as `(node path, pin)`, in build order.
    pub fn all_pins(&self) -> Vec<(String, &Pin)> {
        self.flatten()
            .into_iter()
            .flat_map(|(path, node)| node.pins.iter().map(move |p| (path.clone(), p)))
            .collect()
    }

    /// Graphviz rendering of the hierarchy: one record node per descriptor
    /// with its kind and owned counts, ellipse nodes for pins. Output is
    /// deterministic (build order only) so golden diffs stay reviewable.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("digraph \"{}\" {{\n", self.name));
        s.push_str("  rankdir=LR;\n");
        s.push_str("  node [shape=record, fontname=\"monospace\"];\n");
        self.dot_node(&self.name.clone(), &mut s);
        s.push_str("}\n");
        s
    }

    fn dot_node(&self, path: &str, s: &mut String) {
        let c = self.counts;
        s.push_str(&format!(
            "  \"{path}\" [label=\"{{{}|{}|add {} cmp {} mux {} lut {} reg {}}}\"];\n",
            self.name, self.kind, c.adders, c.comparators, c.muxes, c.luts, c.registers
        ));
        for pin in &self.pins {
            let dir = match pin.dir {
                PinDir::Input => "in",
                PinDir::Output => "out",
            };
            s.push_str(&format!(
                "  \"{path}:{0}\" [shape=ellipse, label=\"{0} ({dir} w{1})\"];\n",
                pin.name, pin.wire
            ));
            match pin.dir {
                PinDir::Input => s.push_str(&format!("  \"{path}:{}\" -> \"{path}\";\n", pin.name)),
                PinDir::Output => {
                    s.push_str(&format!("  \"{path}\" -> \"{path}:{}\";\n", pin.name))
                }
            }
        }
        for child in &self.children {
            let child_path = format!("{path}/{}", child.name);
            s.push_str(&format!("  \"{path}\" -> \"{child_path}\";\n"));
            child.dot_node(&child_path, s);
        }
    }

    /// Stable JSON schematic (pretty-printed, build order, no maps) for
    /// machine consumption and golden-file review.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.json_node(0, &mut s);
        s.push('\n');
        s
    }

    fn json_node(&self, indent: usize, s: &mut String) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        s.push_str("{\n");
        s.push_str(&format!("{pad1}\"name\": \"{}\",\n", escape(&self.name)));
        s.push_str(&format!("{pad1}\"kind\": \"{}\",\n", self.kind));
        s.push_str(&format!("{pad1}\"params\": {{"));
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str("},\n");
        s.push_str(&format!("{pad1}\"pins\": ["));
        for (i, p) in self.pins.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let dir = match p.dir {
                PinDir::Input => "in",
                PinDir::Output => "out",
            };
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"wire\": {}, \"dir\": \"{dir}\"}}",
                escape(&p.name),
                p.wire
            ));
        }
        s.push_str("],\n");
        let c = self.counts;
        s.push_str(&format!(
            "{pad1}\"counts\": {{\"adders\": {}, \"comparators\": {}, \"muxes\": {}, \"luts\": {}, \"registers\": {}}},\n",
            c.adders, c.comparators, c.muxes, c.luts, c.registers
        ));
        s.push_str(&format!("{pad1}\"luts\": ["));
        for (i, id) in self.luts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{id}\""));
        }
        s.push_str("],\n");
        s.push_str(&format!("{pad1}\"children\": ["));
        if self.children.is_empty() {
            s.push(']');
        } else {
            for (i, child) in self.children.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('\n');
                s.push_str(&pad1);
                s.push_str("  ");
                child.json_node(indent + 2, s);
            }
            s.push('\n');
            s.push_str(&format!("{pad1}]"));
        }
        s.push('\n');
        s.push_str(&format!("{pad}}}"));
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Builds a [`CircuitDescriptor`] tree while its [`Netlist`] is being
/// constructed: `begin`/`end` bracket each logical block, and the popped
/// node's counts are read back from the bracketed netlist slice.
#[derive(Debug)]
pub struct DescriptorBuilder {
    frames: Vec<Frame>,
}

#[derive(Debug)]
struct Frame {
    desc: CircuitDescriptor,
    start: Mark,
    child_spans: Vec<(Mark, Mark)>,
}

impl Frame {
    fn new(netlist: &Netlist, name: String, kind: &'static str) -> Self {
        Self {
            desc: CircuitDescriptor {
                name,
                kind,
                params: Vec::new(),
                pins: Vec::new(),
                counts: ComponentCensus::default(),
                luts: Vec::new(),
                children: Vec::new(),
            },
            start: netlist.mark(),
            child_spans: Vec::new(),
        }
    }

    fn close(mut self, netlist: &Netlist) -> (CircuitDescriptor, (Mark, Mark)) {
        let end = netlist.mark();
        self.desc.counts = netlist.census_between(self.start, end, &self.child_spans);
        self.desc.luts = netlist.lut_ids_between(self.start, end, &self.child_spans);
        (self.desc, (self.start, end))
    }
}

impl DescriptorBuilder {
    /// Open the root node. Everything instantiated in `netlist` from this
    /// moment until [`DescriptorBuilder::finish`] belongs to the tree.
    pub fn new(netlist: &Netlist, name: impl Into<String>, kind: &'static str) -> Self {
        Self {
            frames: vec![Frame::new(netlist, name.into(), kind)],
        }
    }

    /// Open a child node of the innermost open node.
    pub fn begin(&mut self, netlist: &Netlist, name: impl Into<String>, kind: &'static str) {
        self.frames.push(Frame::new(netlist, name.into(), kind));
    }

    /// Close the innermost open node, deriving its owned counts from the
    /// netlist slice its bracket covered.
    ///
    /// # Panics
    ///
    /// Panics when only the root is open (close that with `finish`).
    pub fn end(&mut self, netlist: &Netlist) {
        assert!(self.frames.len() > 1, "end() with no open child node");
        let frame = self.frames.pop().expect("frame stack");
        let (desc, span) = frame.close(netlist);
        let parent = self.frames.last_mut().expect("root frame");
        parent.desc.children.push(desc);
        parent.child_spans.push(span);
    }

    /// Record a structural parameter on the innermost open node.
    pub fn param(&mut self, name: &'static str, value: usize) {
        let frame = self.frames.last_mut().expect("open frame");
        frame.desc.params.push((name, value));
    }

    /// Declare an input pin on the innermost open node.
    pub fn pin_in(&mut self, name: impl Into<String>, wire: Wire) {
        self.pin(name.into(), wire, PinDir::Input);
    }

    /// Declare an output pin on the innermost open node.
    pub fn pin_out(&mut self, name: impl Into<String>, wire: Wire) {
        self.pin(name.into(), wire, PinDir::Output);
    }

    fn pin(&mut self, name: String, wire: Wire, dir: PinDir) {
        let frame = self.frames.last_mut().expect("open frame");
        frame.desc.pins.push(Pin { name, wire, dir });
    }

    /// Close the root and return the finished tree.
    ///
    /// # Panics
    ///
    /// Panics if a child node is still open.
    pub fn finish(mut self, netlist: &Netlist) -> CircuitDescriptor {
        assert!(
            self.frames.len() == 1,
            "finish() with {} unclosed child node(s)",
            self.frames.len() - 1
        );
        let (desc, _) = self.frames.pop().expect("root frame").close(netlist);
        desc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> (Netlist, CircuitDescriptor) {
        let mut n = Netlist::new();
        let mut b = DescriptorBuilder::new(&n, "toy", "toy");
        let a = n.input();
        let c = n.input();
        b.pin_in("a", a);
        b.pin_in("c", c);
        b.begin(&n, "sum", "sum-layer");
        let s = n.add(a, c);
        b.end(&n);
        b.begin(&n, "cmp", "max-layer");
        let m = n.max(s, a);
        let q = n.register(m);
        b.end(&n);
        let out = n.sub(q, s);
        b.pin_out("out", out);
        b.param("width", 2);
        let d = b.finish(&n);
        (n, d)
    }

    #[test]
    fn builder_derives_counts_from_netlist_slices() {
        let (n, d) = two_layer();
        assert_eq!(d.children.len(), 2);
        let sum = d.child("sum").expect("sum child");
        assert_eq!(sum.counts.adders, 1);
        assert_eq!(sum.counts.registers, 0);
        let cmp = d.child("cmp").expect("cmp child");
        assert_eq!(cmp.counts.comparators, 1);
        assert_eq!(cmp.counts.registers, 1);
        // Root owns only the trailing sub.
        assert_eq!(d.counts.adders, 1);
        // Subtree census equals the whole-netlist walk.
        assert_eq!(d.census(), n.census());
        assert_eq!(d.param("width"), Some(2));
    }

    #[test]
    fn flatten_paths_and_pins() {
        let (_, d) = two_layer();
        let paths: Vec<String> = d.flatten().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["toy", "toy/sum", "toy/cmp"]);
        let pins = d.all_pins();
        assert_eq!(pins.len(), 3);
        assert_eq!(pins[0].0, "toy");
        assert_eq!(pins[0].1.name, "a");
    }

    #[test]
    fn exports_are_deterministic() {
        let (_, d1) = two_layer();
        let (_, d2) = two_layer();
        assert_eq!(d1.to_dot(), d2.to_dot());
        assert_eq!(d1.to_json(), d2.to_json());
        assert!(d1.to_dot().contains("digraph \"toy\""));
        assert!(d1.to_dot().contains("\"toy/cmp\""));
        assert!(d1.to_json().contains("\"kind\": \"max-layer\""));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_begin_panics_on_finish() {
        let n = Netlist::new();
        let mut b = DescriptorBuilder::new(&n, "x", "x");
        b.begin(&n, "child", "c");
        let _ = b.finish(&n);
    }
}
