//! Structural (netlist-level) simulation of CoopMC accelerator datapaths.
//!
//! The behavioral models in `coopmc-kernels`/`coopmc-sampler` compute *what*
//! the hardware computes; this crate models *how*: circuits are built from
//! primitive components (adders, comparators, LUT ROMs, muxes, registers)
//! wired into a [`Netlist`] and stepped cycle by cycle. The shipped circuits
//! are structural renderings of the paper's micro-architecture diagrams:
//!
//! - [`circuits::NormTreeCircuit`] — the DyNorm comparator tree (Fig. 3),
//! - [`circuits::PgCoreCircuit`] — the fused PG core: factor adders → log
//!   LUT → NormTree → broadcast subtract → TableExp (Fig. 6),
//! - [`circuits::TreeSamplerCircuit`] — TreeSum + TraverseTree (Fig. 8).
//!
//! Every circuit also carries a typed [`CircuitDescriptor`] (see
//! [`descriptor`]): named pins, typed component counts and named children,
//! derived by bracketing the netlist during construction — the single
//! structural source of truth that `coopmc-analyze` schedules/lints,
//! `coopmc-hw` prices, and `coopmc verify --export-schematic` renders.
//!
//! The test suites prove, exhaustively and property-based, that every
//! structural circuit computes *exactly* the same outputs as its behavioral
//! counterpart, and that its descriptor-derived component census matches
//! the area model in `coopmc-hw` — closing the loop between the three
//! layers of the reproduction (behavioral ≡ structural ≡ costed).
//!
//! # Example
//!
//! ```
//! use coopmc_sim::circuits::TreeSamplerCircuit;
//!
//! let mut circuit = TreeSamplerCircuit::new(4);
//! // Sample with an explicit threshold of 0.6 over weights [.1,.2,.3,.4]:
//! let label = circuit.sample(&[0.1, 0.2, 0.3, 0.4], 0.6);
//! assert_eq!(label, 2); // CDF: .1, .3, .6, 1.0 → first bucket > 0.6
//! ```

pub mod circuits;
pub mod descriptor;
mod netlist;

pub use descriptor::{CircuitDescriptor, DescriptorBuilder, Pin, PinDir};
pub use netlist::{Component, ComponentCensus, LutSpec, Mark, Netlist, Wire};
