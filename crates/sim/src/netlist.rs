//! The synchronous netlist: wires, combinational components and registers.

use std::rc::Rc;

/// A wire index in a [`Netlist`]. Wires carry `f64` values that are always
/// members of some fixed-point grid (the same bit-true-in-a-float-container
//  convention as the behavioral models).
pub type Wire = usize;

/// A combinational component instance.
#[derive(Clone)]
pub enum Component {
    /// Constant driver.
    Const {
        /// Output wire.
        out: Wire,
        /// Driven value.
        value: f64,
    },
    /// Two-input adder: `out = a + b`.
    Add {
        /// Left operand.
        a: Wire,
        /// Right operand.
        b: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Two-input subtractor: `out = a - b`.
    Sub {
        /// Minuend.
        a: Wire,
        /// Subtrahend.
        b: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Two-input maximum (a comparator + mux pair in silicon).
    Max {
        /// Left operand.
        a: Wire,
        /// Right operand.
        b: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Comparator: `out = if a >= b { 1.0 } else { 0.0 }`.
    Ge {
        /// Left operand.
        a: Wire,
        /// Right operand.
        b: Wire,
        /// Output wire (boolean-valued).
        out: Wire,
    },
    /// Two-way mux: `out = if sel >= 0.5 { hi } else { lo }`.
    Mux {
        /// Select wire (boolean-valued).
        sel: Wire,
        /// Value when `sel` is 0.
        lo: Wire,
        /// Value when `sel` is 1.
        hi: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Read-only lookup kernel (TableExp / TableLog): `out = f(input)`.
    Lut {
        /// Input wire.
        input: Wire,
        /// Output wire.
        out: Wire,
        /// The ROM's transfer function.
        f: Rc<dyn Fn(f64) -> f64>,
    },
}

impl Component {
    /// Kind name (for diagnostics and provenance traces).
    pub fn kind(&self) -> &'static str {
        match self {
            Component::Const { .. } => "Const",
            Component::Add { .. } => "Add",
            Component::Sub { .. } => "Sub",
            Component::Max { .. } => "Max",
            Component::Ge { .. } => "Ge",
            Component::Mux { .. } => "Mux",
            Component::Lut { .. } => "Lut",
        }
    }

    /// The wire this component drives.
    pub fn out(&self) -> Wire {
        match *self {
            Component::Const { out, .. }
            | Component::Add { out, .. }
            | Component::Sub { out, .. }
            | Component::Max { out, .. }
            | Component::Ge { out, .. }
            | Component::Mux { out, .. }
            | Component::Lut { out, .. } => out,
        }
    }

    /// The wires this component reads (empty for constants).
    pub fn operands(&self) -> Vec<Wire> {
        match *self {
            Component::Const { .. } => vec![],
            Component::Add { a, b, .. }
            | Component::Sub { a, b, .. }
            | Component::Max { a, b, .. }
            | Component::Ge { a, b, .. } => vec![a, b],
            Component::Mux { sel, lo, hi, .. } => vec![sel, lo, hi],
            Component::Lut { input, .. } => vec![input],
        }
    }
}

impl std::fmt::Debug for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind())
    }
}

/// Census of component kinds (for cross-checking the area model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentCensus {
    /// Adders + subtractors.
    pub adders: usize,
    /// Max units and comparators.
    pub comparators: usize,
    /// Muxes.
    pub muxes: usize,
    /// LUT ROM instances.
    pub luts: usize,
    /// Registers.
    pub registers: usize,
}

/// A synchronous netlist: combinational components evaluated in build
/// order (construction guarantees topological order), plus registers
/// clocked at the end of every [`Netlist::step`].
#[derive(Debug, Default)]
pub struct Netlist {
    values: Vec<f64>,
    components: Vec<Component>,
    /// `(d, q)` register pairs: at each clock edge, `q := value(d)`.
    registers: Vec<(Wire, Wire)>,
    inputs: Vec<Wire>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh wire (initial value 0).
    pub fn wire(&mut self) -> Wire {
        self.values.push(0.0);
        self.values.len() - 1
    }

    /// Allocate an external input wire.
    pub fn input(&mut self) -> Wire {
        let w = self.wire();
        self.inputs.push(w);
        w
    }

    /// Drive a constant.
    pub fn constant(&mut self, value: f64) -> Wire {
        let out = self.wire();
        self.components.push(Component::Const { out, value });
        out
    }

    /// `a + b`.
    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Add { a, b, out });
        out
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Sub { a, b, out });
        out
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Max { a, b, out });
        out
    }

    /// `a >= b` as 0/1.
    pub fn ge(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Ge { a, b, out });
        out
    }

    /// `sel ? hi : lo`.
    pub fn mux(&mut self, sel: Wire, lo: Wire, hi: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Mux { sel, lo, hi, out });
        out
    }

    /// A LUT ROM with transfer function `f`.
    pub fn lut(&mut self, input: Wire, f: Rc<dyn Fn(f64) -> f64>) -> Wire {
        let out = self.wire();
        self.components.push(Component::Lut { input, out, f });
        out
    }

    /// A register: returns the `q` output; its `d` input is `d`.
    /// `q` presents last cycle's `d` value (reset value 0).
    pub fn register(&mut self, d: Wire) -> Wire {
        let q = self.wire();
        self.registers.push((d, q));
        q
    }

    /// Census of instantiated components.
    pub fn census(&self) -> ComponentCensus {
        let mut c = ComponentCensus {
            registers: self.registers.len(),
            ..Default::default()
        };
        for comp in &self.components {
            match comp {
                Component::Add { .. } | Component::Sub { .. } => c.adders += 1,
                Component::Max { .. } | Component::Ge { .. } => c.comparators += 1,
                Component::Mux { .. } => c.muxes += 1,
                Component::Lut { .. } => c.luts += 1,
                Component::Const { .. } => {}
            }
        }
        c
    }

    /// Current value of a wire.
    pub fn value(&self, w: Wire) -> f64 {
        self.values[w]
    }

    /// Number of wires allocated so far.
    pub fn n_wires(&self) -> usize {
        self.values.len()
    }

    /// The combinational components in evaluation (topological) order.
    ///
    /// Together with [`Netlist::registers`] and [`Netlist::inputs`] this
    /// exposes the full netlist topology, which is what the static range
    /// analyzer in `coopmc-analyze` walks — it interprets the same
    /// structure [`Netlist::step`] executes, without executing it.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The `(d, q)` register pairs clocked at the end of every step.
    pub fn registers(&self) -> &[(Wire, Wire)] {
        &self.registers
    }

    /// The declared external input wires.
    pub fn inputs(&self) -> &[Wire] {
        &self.inputs
    }

    /// Evaluate one clock cycle: set `inputs` (pairs of wire and value),
    /// propagate combinational logic in build order, then clock the
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics if an input pair names a wire that was not declared with
    /// [`Netlist::input`].
    pub fn step(&mut self, inputs: &[(Wire, f64)]) {
        for &(w, v) in inputs {
            assert!(self.inputs.contains(&w), "wire {w} is not an input");
            self.values[w] = v;
        }
        for comp in &self.components {
            match comp {
                Component::Const { out, value } => self.values[*out] = *value,
                Component::Add { a, b, out } => {
                    self.values[*out] = self.values[*a] + self.values[*b]
                }
                Component::Sub { a, b, out } => {
                    self.values[*out] = self.values[*a] - self.values[*b]
                }
                Component::Max { a, b, out } => {
                    self.values[*out] = self.values[*a].max(self.values[*b])
                }
                Component::Ge { a, b, out } => {
                    self.values[*out] = if self.values[*a] >= self.values[*b] {
                        1.0
                    } else {
                        0.0
                    }
                }
                Component::Mux { sel, lo, hi, out } => {
                    self.values[*out] = if self.values[*sel] >= 0.5 {
                        self.values[*hi]
                    } else {
                        self.values[*lo]
                    }
                }
                Component::Lut { input, out, f } => self.values[*out] = f(self.values[*input]),
            }
        }
        // Clock edge: all registers latch simultaneously.
        let latched: Vec<(Wire, f64)> = self
            .registers
            .iter()
            .map(|&(d, q)| (q, self.values[d]))
            .collect();
        for (q, v) in latched {
            self.values[q] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_chain_evaluates_in_one_step() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let s = n.add(a, b);
        let c = n.constant(10.0);
        let t = n.sub(c, s);
        n.step(&[(a, 3.0), (b, 4.0)]);
        assert_eq!(n.value(s), 7.0);
        assert_eq!(n.value(t), 3.0);
    }

    #[test]
    fn register_delays_by_one_cycle() {
        let mut n = Netlist::new();
        let a = n.input();
        let q = n.register(a);
        n.step(&[(a, 5.0)]);
        // q shows the value *after* the first edge
        assert_eq!(n.value(q), 5.0);
        n.step(&[(a, 9.0)]);
        assert_eq!(n.value(q), 9.0);
    }

    #[test]
    fn register_chain_forms_a_shift_register() {
        let mut n = Netlist::new();
        let a = n.input();
        let q1 = n.register(a);
        let q2 = n.register(q1);
        n.step(&[(a, 1.0)]);
        n.step(&[(a, 2.0)]);
        n.step(&[(a, 3.0)]);
        // After 3 edges: q1 = 3 (latest), q2 = value q1 had before edge = 2.
        assert_eq!(n.value(q1), 3.0);
        assert_eq!(n.value(q2), 2.0);
    }

    #[test]
    fn mux_and_comparator() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let sel = n.ge(a, b);
        let out = n.mux(sel, a, b); // min(a, b) via (a>=b ? b : a)
        n.step(&[(a, 7.0), (b, 2.0)]);
        assert_eq!(n.value(sel), 1.0);
        assert_eq!(n.value(out), 2.0);
        n.step(&[(a, 1.0), (b, 2.0)]);
        assert_eq!(n.value(out), 1.0);
    }

    #[test]
    fn lut_applies_transfer_function() {
        let mut n = Netlist::new();
        let a = n.input();
        let out = n.lut(a, Rc::new(|x| x * x));
        n.step(&[(a, 3.0)]);
        assert_eq!(n.value(out), 9.0);
    }

    #[test]
    fn census_counts_components() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let s = n.add(a, b);
        let m = n.max(a, b);
        let g = n.ge(s, m);
        let x = n.mux(g, s, m);
        let _ = n.register(x);
        let _ = n.lut(x, Rc::new(|v| v));
        let c = n.census();
        assert_eq!(c.adders, 1);
        assert_eq!(c.comparators, 2);
        assert_eq!(c.muxes, 1);
        assert_eq!(c.registers, 1);
        assert_eq!(c.luts, 1);
    }

    #[test]
    #[should_panic(expected = "not an input")]
    fn driving_non_input_panics() {
        let mut n = Netlist::new();
        let a = n.input();
        let s = n.add(a, a);
        n.step(&[(s, 1.0)]);
    }
}
