//! The synchronous netlist: wires, combinational components and registers.

use std::rc::Rc;

/// A wire index in a [`Netlist`]. Wires carry `f64` values that are always
/// members of some fixed-point grid (the same bit-true-in-a-float-container
//  convention as the behavioral models).
pub type Wire = usize;

/// A combinational component instance.
#[derive(Clone)]
pub enum Component {
    /// Constant driver.
    Const {
        /// Output wire.
        out: Wire,
        /// Driven value.
        value: f64,
    },
    /// Two-input adder: `out = a + b`.
    Add {
        /// Left operand.
        a: Wire,
        /// Right operand.
        b: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Two-input subtractor: `out = a - b`.
    Sub {
        /// Minuend.
        a: Wire,
        /// Subtrahend.
        b: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Two-input maximum (a comparator + mux pair in silicon).
    Max {
        /// Left operand.
        a: Wire,
        /// Right operand.
        b: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Comparator: `out = if a >= b { 1.0 } else { 0.0 }`.
    Ge {
        /// Left operand.
        a: Wire,
        /// Right operand.
        b: Wire,
        /// Output wire (boolean-valued).
        out: Wire,
    },
    /// Two-way mux: `out = if sel >= 0.5 { hi } else { lo }`.
    Mux {
        /// Select wire (boolean-valued).
        sel: Wire,
        /// Value when `sel` is 0.
        lo: Wire,
        /// Value when `sel` is 1.
        hi: Wire,
        /// Output wire.
        out: Wire,
    },
    /// Read-only lookup kernel (TableExp / TableLog): `out = spec.f(input)`.
    Lut {
        /// Input wire.
        input: Wire,
        /// Output wire.
        out: Wire,
        /// The ROM's identity, geometry and transfer function.
        spec: LutSpec,
    },
}

/// A named LUT ROM: identity, geometry and transfer function.
///
/// Replaces the old anonymous `Rc<dyn Fn>` argument to [`Netlist::lut`] so
/// descriptors, schematic exports and the `coopmc-analyze` error propagator
/// can refer to a ROM by name (`"table-exp"`) instead of by its position in
/// the component list.
#[derive(Clone)]
pub struct LutSpec {
    /// Stable identifier (e.g. `"table-exp"`), unique per ROM *kind* — two
    /// instances of the same table share an id.
    pub id: &'static str,
    /// Number of table entries (0 when the ROM models an abstract function
    /// with no committed geometry, e.g. in unit tests).
    pub size: usize,
    /// Fractional bits per entry (0 when abstract).
    pub bits: u32,
    /// The transfer function the simulator evaluates.
    pub f: Rc<dyn Fn(f64) -> f64>,
}

impl LutSpec {
    /// A ROM with committed geometry (`size` entries × `bits` bits).
    pub fn new(id: &'static str, size: usize, bits: u32, f: Rc<dyn Fn(f64) -> f64>) -> Self {
        Self { id, size, bits, f }
    }

    /// A named ROM with no committed geometry (unit tests, abstract models).
    pub fn opaque(id: &'static str, f: Rc<dyn Fn(f64) -> f64>) -> Self {
        Self {
            id,
            size: 0,
            bits: 0,
            f,
        }
    }
}

impl std::fmt::Debug for LutSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}x{}]", self.id, self.size, self.bits)
    }
}

impl Component {
    /// Kind name (for diagnostics and provenance traces).
    pub fn kind(&self) -> &'static str {
        match self {
            Component::Const { .. } => "Const",
            Component::Add { .. } => "Add",
            Component::Sub { .. } => "Sub",
            Component::Max { .. } => "Max",
            Component::Ge { .. } => "Ge",
            Component::Mux { .. } => "Mux",
            Component::Lut { .. } => "Lut",
        }
    }

    /// The wire this component drives.
    pub fn out(&self) -> Wire {
        match *self {
            Component::Const { out, .. }
            | Component::Add { out, .. }
            | Component::Sub { out, .. }
            | Component::Max { out, .. }
            | Component::Ge { out, .. }
            | Component::Mux { out, .. }
            | Component::Lut { out, .. } => out,
        }
    }

    /// The wires this component reads (empty for constants).
    pub fn operands(&self) -> Vec<Wire> {
        match *self {
            Component::Const { .. } => vec![],
            Component::Add { a, b, .. }
            | Component::Sub { a, b, .. }
            | Component::Max { a, b, .. }
            | Component::Ge { a, b, .. } => vec![a, b],
            Component::Mux { sel, lo, hi, .. } => vec![sel, lo, hi],
            Component::Lut { input, .. } => vec![input],
        }
    }

    /// Display label: like [`Component::kind`] but LUTs carry their ROM id
    /// (`Lut[table-exp]`), so provenance traces name the table involved.
    pub fn label(&self) -> String {
        match self {
            Component::Lut { spec, .. } => format!("Lut[{}]", spec.id),
            other => other.kind().to_string(),
        }
    }

    /// The LUT spec, when this component is a ROM.
    pub fn lut_spec(&self) -> Option<&LutSpec> {
        match self {
            Component::Lut { spec, .. } => Some(spec),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind())
    }
}

/// Census of component kinds (for cross-checking the area model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentCensus {
    /// Adders + subtractors.
    pub adders: usize,
    /// Max units and comparators.
    pub comparators: usize,
    /// Muxes.
    pub muxes: usize,
    /// LUT ROM instances.
    pub luts: usize,
    /// Registers.
    pub registers: usize,
}

impl ComponentCensus {
    /// Accumulate another census into this one, field by field.
    pub fn absorb(&mut self, other: ComponentCensus) {
        self.adders += other.adders;
        self.comparators += other.comparators;
        self.muxes += other.muxes;
        self.luts += other.luts;
        self.registers += other.registers;
    }

    /// Tally one component kind (constants are free).
    pub fn count(&mut self, comp: &Component) {
        match comp {
            Component::Add { .. } | Component::Sub { .. } => self.adders += 1,
            Component::Max { .. } | Component::Ge { .. } => self.comparators += 1,
            Component::Mux { .. } => self.muxes += 1,
            Component::Lut { .. } => self.luts += 1,
            Component::Const { .. } => {}
        }
    }

    /// Total priced instances (everything except constants).
    pub fn total(&self) -> usize {
        self.adders + self.comparators + self.muxes + self.luts + self.registers
    }
}

/// A cursor into a [`Netlist`]'s build history: how many components,
/// registers and wires existed at the moment [`Netlist::mark`] was called.
///
/// Two marks bracket a *region* — the slice of hardware instantiated
/// between them. Circuit constructors capture marks around each logical
/// block so the derived [`crate::descriptor::CircuitDescriptor`] counts
/// come from walking the netlist itself, never from hand-kept arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    /// Component count at the mark.
    pub components: usize,
    /// Register count at the mark.
    pub registers: usize,
    /// Wire count at the mark.
    pub wires: usize,
}

/// A synchronous netlist: combinational components evaluated in build
/// order (construction guarantees topological order), plus registers
/// clocked at the end of every [`Netlist::step`].
#[derive(Debug, Default)]
pub struct Netlist {
    values: Vec<f64>,
    components: Vec<Component>,
    /// `(d, q)` register pairs: at each clock edge, `q := value(d)`.
    registers: Vec<(Wire, Wire)>,
    inputs: Vec<Wire>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh wire (initial value 0).
    pub fn wire(&mut self) -> Wire {
        self.values.push(0.0);
        self.values.len() - 1
    }

    /// Allocate an external input wire.
    pub fn input(&mut self) -> Wire {
        let w = self.wire();
        self.inputs.push(w);
        w
    }

    /// Drive a constant.
    pub fn constant(&mut self, value: f64) -> Wire {
        let out = self.wire();
        self.components.push(Component::Const { out, value });
        out
    }

    /// `a + b`.
    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Add { a, b, out });
        out
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Sub { a, b, out });
        out
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Max { a, b, out });
        out
    }

    /// `a >= b` as 0/1.
    pub fn ge(&mut self, a: Wire, b: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Ge { a, b, out });
        out
    }

    /// `sel ? hi : lo`.
    pub fn mux(&mut self, sel: Wire, lo: Wire, hi: Wire) -> Wire {
        let out = self.wire();
        self.components.push(Component::Mux { sel, lo, hi, out });
        out
    }

    /// A LUT ROM described by `spec` (see [`LutSpec`]).
    pub fn lut(&mut self, input: Wire, spec: LutSpec) -> Wire {
        let out = self.wire();
        self.components.push(Component::Lut { input, out, spec });
        out
    }

    /// A register: returns the `q` output; its `d` input is `d`.
    /// `q` presents last cycle's `d` value (reset value 0).
    pub fn register(&mut self, d: Wire) -> Wire {
        let q = self.wire();
        self.registers.push((d, q));
        q
    }

    /// Census of instantiated components.
    pub fn census(&self) -> ComponentCensus {
        let mut c = ComponentCensus {
            registers: self.registers.len(),
            ..Default::default()
        };
        for comp in &self.components {
            c.count(comp);
        }
        c
    }

    /// Capture a cursor into the build history (see [`Mark`]).
    pub fn mark(&self) -> Mark {
        Mark {
            components: self.components.len(),
            registers: self.registers.len(),
            wires: self.values.len(),
        }
    }

    /// Census of the region between two marks, skipping any sub-spans in
    /// `exclude` (component-index/register-index ranges claimed by nested
    /// regions). This is how descriptor counts are derived: each
    /// descriptor node owns exactly the hardware its own bracket
    /// instantiated, minus what its children's brackets claimed.
    pub fn census_between(
        &self,
        from: Mark,
        to: Mark,
        exclude: &[(Mark, Mark)],
    ) -> ComponentCensus {
        let mut c = ComponentCensus::default();
        for i in from.components..to.components {
            if exclude
                .iter()
                .any(|&(s, e)| i >= s.components && i < e.components)
            {
                continue;
            }
            c.count(&self.components[i]);
        }
        for r in from.registers..to.registers {
            if exclude
                .iter()
                .any(|&(s, e)| r >= s.registers && r < e.registers)
            {
                continue;
            }
            c.registers += 1;
        }
        c
    }

    /// Ids of the LUT ROMs instantiated between two marks (same exclusion
    /// semantics as [`Netlist::census_between`]), in build order.
    pub fn lut_ids_between(
        &self,
        from: Mark,
        to: Mark,
        exclude: &[(Mark, Mark)],
    ) -> Vec<&'static str> {
        (from.components..to.components)
            .filter(|&i| {
                !exclude
                    .iter()
                    .any(|&(s, e)| i >= s.components && i < e.components)
            })
            .filter_map(|i| self.components[i].lut_spec().map(|s| s.id))
            .collect()
    }

    /// Current value of a wire.
    pub fn value(&self, w: Wire) -> f64 {
        self.values[w]
    }

    /// Number of wires allocated so far.
    pub fn n_wires(&self) -> usize {
        self.values.len()
    }

    /// The combinational components in evaluation (topological) order.
    ///
    /// Together with [`Netlist::registers`] and [`Netlist::inputs`] this
    /// exposes the full netlist topology, which is what the static range
    /// analyzer in `coopmc-analyze` walks — it interprets the same
    /// structure [`Netlist::step`] executes, without executing it.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The `(d, q)` register pairs clocked at the end of every step.
    pub fn registers(&self) -> &[(Wire, Wire)] {
        &self.registers
    }

    /// The declared external input wires.
    pub fn inputs(&self) -> &[Wire] {
        &self.inputs
    }

    /// Evaluate one clock cycle: set `inputs` (pairs of wire and value),
    /// propagate combinational logic in build order, then clock the
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics if an input pair names a wire that was not declared with
    /// [`Netlist::input`].
    pub fn step(&mut self, inputs: &[(Wire, f64)]) {
        for &(w, v) in inputs {
            assert!(self.inputs.contains(&w), "wire {w} is not an input");
            self.values[w] = v;
        }
        for comp in &self.components {
            match comp {
                Component::Const { out, value } => self.values[*out] = *value,
                Component::Add { a, b, out } => {
                    self.values[*out] = self.values[*a] + self.values[*b]
                }
                Component::Sub { a, b, out } => {
                    self.values[*out] = self.values[*a] - self.values[*b]
                }
                Component::Max { a, b, out } => {
                    self.values[*out] = self.values[*a].max(self.values[*b])
                }
                Component::Ge { a, b, out } => {
                    self.values[*out] = if self.values[*a] >= self.values[*b] {
                        1.0
                    } else {
                        0.0
                    }
                }
                Component::Mux { sel, lo, hi, out } => {
                    self.values[*out] = if self.values[*sel] >= 0.5 {
                        self.values[*hi]
                    } else {
                        self.values[*lo]
                    }
                }
                Component::Lut { input, out, spec } => {
                    self.values[*out] = (spec.f)(self.values[*input])
                }
            }
        }
        // Clock edge: all registers latch simultaneously.
        let latched: Vec<(Wire, f64)> = self
            .registers
            .iter()
            .map(|&(d, q)| (q, self.values[d]))
            .collect();
        for (q, v) in latched {
            self.values[q] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_chain_evaluates_in_one_step() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let s = n.add(a, b);
        let c = n.constant(10.0);
        let t = n.sub(c, s);
        n.step(&[(a, 3.0), (b, 4.0)]);
        assert_eq!(n.value(s), 7.0);
        assert_eq!(n.value(t), 3.0);
    }

    #[test]
    fn register_delays_by_one_cycle() {
        let mut n = Netlist::new();
        let a = n.input();
        let q = n.register(a);
        n.step(&[(a, 5.0)]);
        // q shows the value *after* the first edge
        assert_eq!(n.value(q), 5.0);
        n.step(&[(a, 9.0)]);
        assert_eq!(n.value(q), 9.0);
    }

    #[test]
    fn register_chain_forms_a_shift_register() {
        let mut n = Netlist::new();
        let a = n.input();
        let q1 = n.register(a);
        let q2 = n.register(q1);
        n.step(&[(a, 1.0)]);
        n.step(&[(a, 2.0)]);
        n.step(&[(a, 3.0)]);
        // After 3 edges: q1 = 3 (latest), q2 = value q1 had before edge = 2.
        assert_eq!(n.value(q1), 3.0);
        assert_eq!(n.value(q2), 2.0);
    }

    #[test]
    fn mux_and_comparator() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let sel = n.ge(a, b);
        let out = n.mux(sel, a, b); // min(a, b) via (a>=b ? b : a)
        n.step(&[(a, 7.0), (b, 2.0)]);
        assert_eq!(n.value(sel), 1.0);
        assert_eq!(n.value(out), 2.0);
        n.step(&[(a, 1.0), (b, 2.0)]);
        assert_eq!(n.value(out), 1.0);
    }

    #[test]
    fn lut_applies_transfer_function() {
        let mut n = Netlist::new();
        let a = n.input();
        let out = n.lut(a, LutSpec::opaque("square", Rc::new(|x| x * x)));
        n.step(&[(a, 3.0)]);
        assert_eq!(n.value(out), 9.0);
    }

    #[test]
    fn census_counts_components() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let s = n.add(a, b);
        let m = n.max(a, b);
        let g = n.ge(s, m);
        let x = n.mux(g, s, m);
        let _ = n.register(x);
        let _ = n.lut(x, LutSpec::opaque("identity", Rc::new(|v| v)));
        let c = n.census();
        assert_eq!(c.adders, 1);
        assert_eq!(c.comparators, 2);
        assert_eq!(c.muxes, 1);
        assert_eq!(c.registers, 1);
        assert_eq!(c.luts, 1);
    }

    #[test]
    fn region_census_tiles_the_netlist() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let m0 = n.mark();
        let s = n.add(a, b);
        let inner_start = n.mark();
        let m = n.max(s, a);
        let _ = n.register(m);
        let inner_end = n.mark();
        let _ = n.sub(s, m);
        let m1 = n.mark();

        let inner = n.census_between(inner_start, inner_end, &[]);
        assert_eq!(inner.comparators, 1);
        assert_eq!(inner.registers, 1);
        assert_eq!(inner.adders, 0);

        // Outer region excluding the inner span keeps only its own add/sub.
        let outer_own = n.census_between(m0, m1, &[(inner_start, inner_end)]);
        assert_eq!(outer_own.adders, 2);
        assert_eq!(outer_own.comparators, 0);
        assert_eq!(outer_own.registers, 0);

        // Own + inner == the unexcluded walk == the whole-netlist census.
        let mut sum = outer_own;
        sum.absorb(inner);
        assert_eq!(sum, n.census_between(m0, m1, &[]));
        assert_eq!(sum, n.census());
    }

    #[test]
    fn lut_ids_surface_in_labels_and_regions() {
        let mut n = Netlist::new();
        let a = n.input();
        let m0 = n.mark();
        let _ = n.lut(a, LutSpec::new("table-exp", 64, 8, Rc::new(|x| x.exp())));
        let m1 = n.mark();
        assert_eq!(n.lut_ids_between(m0, m1, &[]), vec!["table-exp"]);
        assert_eq!(n.components()[0].label(), "Lut[table-exp]");
        assert_eq!(n.components()[0].kind(), "Lut");
    }

    #[test]
    #[should_panic(expected = "not an input")]
    fn driving_non_input_panics() {
        let mut n = Netlist::new();
        let a = n.input();
        let s = n.add(a, a);
        n.step(&[(s, 1.0)]);
    }
}
