//! Property-based equivalence: the structural circuits compute exactly what
//! the behavioral models compute, for any input (deterministic generator
//! harness from `coopmc-testkit`).

use coopmc_kernels::dynorm::dynorm_apply;
use coopmc_kernels::exp::{ExpKernel, TableExp};
use coopmc_sampler::{Sampler, SequentialSampler, TreeSampler};
use coopmc_sim::circuits::{NormTreeCircuit, PgCoreCircuit, TreeSamplerCircuit};
use coopmc_testkit::check;

#[test]
fn tree_sampler_circuit_equivalence() {
    check("tree_sampler_circuit_equivalence", 256, |g| {
        let probs = g.vec_f64(2, 40, 0.0, 8.0);
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return;
        }
        let t = g.f64_in(0.0, 0.9999) * total;
        let mut circuit = TreeSamplerCircuit::new(probs.len());
        let structural = circuit.sample(&probs, t);
        let tree = TreeSampler::new().sample_with_threshold(&probs, t).label;
        let seq = SequentialSampler::new()
            .sample_with_threshold(&probs, t)
            .label;
        assert_eq!(structural, tree);
        assert_eq!(structural, seq);
    });
}

#[test]
fn pg_core_circuit_equivalence() {
    check("pg_core_circuit_equivalence", 128, |g| {
        let lanes = 1usize << g.u32_in(1, 4);
        let factors: Vec<Vec<f64>> = (0..lanes)
            .map(|_| (0..3).map(|_| g.f64_in(-8.0, 0.0)).collect())
            .collect();
        let size = 1usize << g.u32_in(3, 8);
        let bits = g.u32_in(2, 17);
        let mut core = PgCoreCircuit::new(lanes, 3, size, bits);
        let structural = core.evaluate(&factors);
        let mut scores: Vec<f64> = factors.iter().map(|f| f.iter().sum()).collect();
        dynorm_apply(&mut scores, lanes);
        let table = TableExp::new(size, bits);
        let behavioral: Vec<f64> = scores.iter().map(|&s| table.exp(s)).collect();
        assert_eq!(structural, behavioral);
    });
}

#[test]
fn normtree_streaming_equivalence() {
    check("normtree_streaming_equivalence", 128, |g| {
        let width = 1usize << g.u32_in(1, 5);
        let n_vectors = g.usize_in(3, 10);
        let vectors: Vec<Vec<f64>> = (0..n_vectors)
            .map(|_| g.vec_f64(width, width + 1, -100.0, 100.0))
            .collect();
        let mut circuit = NormTreeCircuit::new(width);
        let depth = circuit.depth();
        let mut outputs = Vec::new();
        for v in &vectors {
            outputs.push(circuit.step(v));
        }
        // flush the pipeline
        for _ in 0..depth {
            outputs.push(circuit.step(&vec![f64::MIN; width]));
        }
        for (k, v) in vectors.iter().enumerate() {
            let want = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let got = outputs[k + depth - 1];
            assert_eq!(got, want, "vector {k} mismatched");
        }
    });
}

/// The structural TreeSampler's adder census equals the count the hw area
/// model charges for TreeSum, across sizes.
#[test]
fn structural_census_tracks_area_model() {
    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let circuit = TreeSamplerCircuit::new(n);
        let census = circuit.descriptor().census();
        let padded = n.next_power_of_two();
        let depth = padded.trailing_zeros() as usize;
        // TreeSum adders (padded-1) + per-level traverse subtractor +
        // per-level label adder.
        assert_eq!(census.adders, (padded - 1) + 2 * depth, "n={n}");
        assert_eq!(census.comparators, depth, "n={n}");
    }
}

/// Driving the structural pipeline end to end: PG core feeding the sampler
/// circuit reproduces the behavioral engine's chosen label.
#[test]
fn pg_to_sampler_structural_path() {
    let mut core = PgCoreCircuit::new(8, 2, 64, 8);
    let factors: Vec<Vec<f64>> = (0..8).map(|i| vec![-(i as f64) * 0.7, -0.3]).collect();
    let probs = core.evaluate(&factors);
    let total: f64 = probs.iter().sum();
    let mut sampler = TreeSamplerCircuit::new(8);
    let behavioral = TreeSampler::new();
    for k in 0..50 {
        let t = total * (k as f64 + 0.5) / 50.5;
        assert_eq!(
            sampler.sample(&probs, t),
            behavioral.sample_with_threshold(&probs, t).label
        );
    }
}
