//! Property-based equivalence: the structural circuits compute exactly what
//! the behavioral models compute, for any input.

use coopmc_kernels::dynorm::dynorm_apply;
use coopmc_kernels::exp::{ExpKernel, TableExp};
use coopmc_sampler::{Sampler, SequentialSampler, TreeSampler};
use coopmc_sim::circuits::{NormTreeCircuit, PgCoreCircuit, TreeSamplerCircuit};
use proptest::prelude::*;

proptest! {
    /// TreeSamplerCircuit ≡ TreeSampler ≡ SequentialSampler under every
    /// threshold, for arbitrary label counts (including non-powers of two).
    #[test]
    fn tree_sampler_circuit_equivalence(
        probs in prop::collection::vec(0.0f64..8.0, 2..40)
            .prop_filter("mass", |v| v.iter().sum::<f64>() > 0.0),
        u in 0.0f64..0.9999,
    ) {
        let total: f64 = probs.iter().sum();
        let t = u * total;
        let mut circuit = TreeSamplerCircuit::new(probs.len());
        let structural = circuit.sample(&probs, t);
        let tree = TreeSampler::new().sample_with_threshold(&probs, t).label;
        let seq = SequentialSampler::new().sample_with_threshold(&probs, t).label;
        prop_assert_eq!(structural, tree);
        prop_assert_eq!(structural, seq);
    }

    /// PgCoreCircuit ≡ sum → DyNorm → TableExp for arbitrary factor inputs.
    #[test]
    fn pg_core_circuit_equivalence(
        lanes_pow in 1u32..4,
        factor_matrix in prop::collection::vec(
            prop::collection::vec(-8.0f64..0.0, 3), 8),
        size_pow in 3u32..8,
        bits in 2u32..17,
    ) {
        let lanes = 1usize << lanes_pow.max(1);
        let factors: Vec<Vec<f64>> = factor_matrix.into_iter().take(lanes).collect();
        prop_assume!(factors.len() == lanes);
        let size = 1usize << size_pow;
        let mut core = PgCoreCircuit::new(lanes, 3, size, bits);
        let structural = core.evaluate(&factors);
        let mut scores: Vec<f64> = factors.iter().map(|f| f.iter().sum()).collect();
        dynorm_apply(&mut scores, lanes);
        let table = TableExp::new(size, bits);
        let behavioral: Vec<f64> = scores.iter().map(|&s| table.exp(s)).collect();
        prop_assert_eq!(structural, behavioral);
    }

    /// The pipelined NormTreeCircuit streams correct maxima at full rate.
    #[test]
    fn normtree_streaming_equivalence(
        width_pow in 1u32..5,
        stream in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 16), 3..10),
    ) {
        let width = 1usize << width_pow;
        let mut circuit = NormTreeCircuit::new(width);
        let depth = circuit.depth();
        let vectors: Vec<Vec<f64>> =
            stream.iter().map(|v| v[..width].to_vec()).collect();
        let mut outputs = Vec::new();
        for v in &vectors {
            outputs.push(circuit.step(v));
        }
        // flush the pipeline
        for _ in 0..depth {
            outputs.push(circuit.step(&vec![f64::MIN; width]));
        }
        for (k, v) in vectors.iter().enumerate() {
            let want = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let got = outputs[k + depth - 1];
            prop_assert_eq!(got, want, "vector {} mismatched", k);
        }
    }
}

/// The structural TreeSampler's adder census equals the count the hw area
/// model charges for TreeSum, across sizes.
#[test]
fn structural_census_tracks_area_model() {
    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let circuit = TreeSamplerCircuit::new(n);
        let census = circuit.census();
        let padded = n.next_power_of_two();
        let depth = padded.trailing_zeros() as usize;
        // TreeSum adders (padded-1) + per-level traverse subtractor +
        // per-level label adder.
        assert_eq!(census.adders, (padded - 1) + 2 * depth, "n={n}");
        assert_eq!(census.comparators, depth, "n={n}");
    }
}

/// Driving the structural pipeline end to end: PG core feeding the sampler
/// circuit reproduces the behavioral engine's chosen label.
#[test]
fn pg_to_sampler_structural_path() {
    let mut core = PgCoreCircuit::new(8, 2, 64, 8);
    let factors: Vec<Vec<f64>> = (0..8)
        .map(|i| vec![-(i as f64) * 0.7, -0.3])
        .collect();
    let probs = core.evaluate(&factors);
    let total: f64 = probs.iter().sum();
    let mut sampler = TreeSamplerCircuit::new(8);
    let behavioral = TreeSampler::new();
    for k in 0..50 {
        let t = total * (k as f64 + 0.5) / 50.5;
        assert_eq!(
            sampler.sample(&probs, t),
            behavioral.sample_with_threshold(&probs, t).label
        );
    }
}
