//! Golden-file tests for the descriptor schematic exports, plus the
//! property that descriptor censuses tile random netlists exactly.
//!
//! The `.dot`/`.json` goldens under `tests/golden/` pin the export format:
//! a format change is a reviewable diff, not a silent drift. Regenerate
//! them with `COOPMC_BLESS=1 cargo test -p coopmc-sim --test
//! schematic_golden`.

use std::path::PathBuf;
use std::rc::Rc;

use coopmc_sim::circuits::{NormTreeCircuit, PgCoreCircuit, TreeSamplerCircuit};
use coopmc_sim::{CircuitDescriptor, DescriptorBuilder, LutSpec, Netlist};
use coopmc_testkit::{check, Gen};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `rendered` against the committed golden, or rewrite it when
/// `COOPMC_BLESS` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var("COOPMC_BLESS").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, rendered).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with COOPMC_BLESS=1", name));
    assert_eq!(
        rendered, want,
        "schematic export for {name} drifted from its golden; \
         rerun with COOPMC_BLESS=1 if the change is intentional"
    );
}

#[test]
fn norm_tree_schematic_matches_golden() {
    let d = NormTreeCircuit::new(4).descriptor().clone();
    assert_golden("norm-tree-4.dot", &d.to_dot());
    assert_golden("norm-tree-4.json", &d.to_json());
}

#[test]
fn pg_core_schematic_matches_golden() {
    let d = PgCoreCircuit::new(2, 2, 16, 8).descriptor().clone();
    assert_golden("pg-core-2x2-16x8.dot", &d.to_dot());
    assert_golden("pg-core-2x2-16x8.json", &d.to_json());
}

#[test]
fn tree_sampler_schematic_matches_golden() {
    let d = TreeSamplerCircuit::new(4).descriptor().clone();
    assert_golden("tree-sampler-4.dot", &d.to_dot());
    assert_golden("tree-sampler-4.json", &d.to_json());
}

/// A random netlist with random (possibly nested) descriptor brackets:
/// whatever slices the builder carves out, own + children counts must
/// tile the whole netlist with nothing dropped or double-counted.
fn random_marked_netlist(g: &mut Gen) -> (Netlist, CircuitDescriptor) {
    let mut n = Netlist::new();
    let mut b = DescriptorBuilder::new(&n, "prop", "prop");
    let mut wires = vec![n.input(), n.input(), n.input()];
    let mut open = 0usize;
    for i in 0..g.usize_in(5, 40) {
        if open < 3 && g.bool() {
            b.begin(&n, format!("c{i}"), "blk");
            open += 1;
        }
        let a = wires[g.index(wires.len())];
        let c = wires[g.index(wires.len())];
        let w = match g.index(7) {
            0 => n.add(a, c),
            1 => n.sub(a, c),
            2 => n.max(a, c),
            3 => n.ge(a, c),
            4 => {
                let sel = n.ge(a, c);
                n.mux(sel, a, c)
            }
            5 => n.register(a),
            _ => n.lut(a, LutSpec::opaque("t", Rc::new(|x: f64| x))),
        };
        wires.push(w);
        if open > 0 && g.bool() {
            b.end(&n);
            open -= 1;
        }
    }
    while open > 0 {
        b.end(&n);
        open -= 1;
    }
    let d = b.finish(&n);
    (n, d)
}

#[test]
fn descriptor_census_tiles_random_netlists() {
    check("descriptor_census_tiles_random_netlists", 128, |g| {
        let (n, d) = random_marked_netlist(g);
        // The subtree census must equal the whole-netlist walk...
        assert_eq!(d.census(), n.census());
        // ...and the per-node owned counts must tile it exactly (no
        // component claimed by two nodes, none orphaned).
        let tiled: usize = d
            .flatten()
            .iter()
            .map(|(_, node)| node.counts.total())
            .sum();
        assert_eq!(tiled, n.census().total());
    });
}
