//! A tiny, fully deterministic property-testing harness.
//!
//! The workspace builds in hermetic environments with no access to
//! crates.io, so it cannot depend on `proptest`. This crate provides the
//! small subset the test suites actually need: a seeded case generator and
//! a driver that runs a property over many generated inputs, reporting the
//! case seed on failure so any counterexample is reproducible with
//! [`check_seeded`].
//!
//! Properties are plain closures over a [`Gen`]; assertions are the
//! standard `assert!`/`assert_eq!` macros. There is no shrinking — cases
//! are small by construction (callers bound their own sizes), and the
//! printed seed replays the exact failing case.
//!
//! # Example
//!
//! ```
//! use coopmc_testkit::check;
//!
//! check("addition commutes", 64, |g| {
//!     let (a, b) = (g.i64_in(-100, 100), g.i64_in(-100, 100));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use coopmc_rng::{HwRng, SplitMix64};

/// Default number of cases run by [`check`]'s convenience wrappers.
pub const DEFAULT_CASES: usize = 128;

/// A deterministic random-input generator for one property-test case.
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// A generator seeded for one case.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.rng.next_f64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.rng.uniform_index(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.usize_in(lo as usize, hi as usize) as u32
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.rng.uniform_index((hi - lo) as usize) as i64
    }

    /// An index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.rng.uniform_index(len)
    }

    /// A `Vec<f64>` with a length drawn from `[min_len, max_len)` and
    /// elements drawn from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if either range is empty.
    pub fn vec_f64(&mut self, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let n = self.usize_in(min_len, max_len);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// Run `property` over `cases` generated inputs. Each case gets its own
/// seeded [`Gen`]; on a panic the failing case seed is printed so the case
/// can be replayed with [`check_seeded`].
pub fn check(name: &str, cases: usize, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case as u64);
        let mut g = Gen::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed on case {case} — replay with \
                 coopmc_testkit::check_seeded({seed:#x}, ..)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replay a single property case from the seed printed by a failed
/// [`check`] run.
pub fn check_seeded(seed: u64, mut property: impl FnMut(&mut Gen)) {
    let mut g = Gen::new(seed);
    property(&mut g);
}

/// Derive a decorrelated per-case seed from the property name and index.
fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index through SplitMix64's
    // finalizer so consecutive cases are decorrelated.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)).derive()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_respected() {
        check("ranges", 256, |g| {
            let x = g.f64_in(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
            let n = g.usize_in(2, 9);
            assert!((2..9).contains(&n));
            let v = g.vec_f64(1, 5, 0.0, 1.0);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check("det", 8, |g| first.push(g.u64()));
        let mut second = Vec::new();
        check("det", 8, |g| second.push(g.u64()));
        assert_eq!(first, second);
        let mut other = Vec::new();
        check("det2", 8, |g| other.push(g.u64()));
        assert_ne!(
            first, other,
            "distinct properties must see distinct streams"
        );
    }

    #[test]
    fn failing_case_reports_replayable_seed() {
        let seed = case_seed("will-fail", 0);
        let direct = Gen::new(seed).u64();
        let mut replayed = 0;
        check_seeded(seed, |g| replayed = g.u64());
        assert_eq!(direct, replayed);
    }
}
