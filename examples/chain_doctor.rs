//! Chain doctor: put an MCMC run under the statistical-robustness
//! instruments — R̂ across parallel chains, effective sample size,
//! autocorrelation, Geweke drift — and compare a healthy float chain with a
//! precision-starved one, as prescribed by Zhang et al. (ASPLOS 2021),
//! the robustness framework the CoopMC paper builds on.
//!
//! Run with: `cargo run --release --example chain_doctor`

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::diagnostics::{
    autocorrelation, effective_sample_size, gelman_rubin, geweke_z, thin,
};
use coopmc::models::mrf::stereo_matching;
use coopmc::models::GibbsModel;
use coopmc::rng::SplitMix64;
use coopmc::sampler::TreeSampler;

fn energy_chain(config: PipelineConfig, seed: u64, sweeps: u64) -> Vec<f64> {
    let app = stereo_matching(32, 24, 7);
    let mut model = app.mrf.clone();
    let mut engine = GibbsEngine::new(config.build(), TreeSampler::new(), SplitMix64::new(seed));
    let mut stats = RunStats::default();
    let mut chain = Vec::new();
    for _ in 0..sweeps {
        engine.sweep(&mut model, &mut stats);
        chain.push(model.energy());
    }
    chain
}

fn examine(name: &str, config: PipelineConfig) {
    println!("--- {name} ---");
    let chains: Vec<Vec<f64>> = (0..4)
        .map(|c| thin(&energy_chain(config, 100 + c, 60), 15, 1))
        .collect();
    let rhat = gelman_rubin(&chains);
    let ess: f64 =
        chains.iter().map(|c| effective_sample_size(c)).sum::<f64>() / chains.len() as f64;
    let acf1: f64 = chains.iter().map(|c| autocorrelation(c, 1)).sum::<f64>() / chains.len() as f64;
    let geweke: f64 = chains.iter().map(|c| geweke_z(c).abs()).sum::<f64>() / chains.len() as f64;
    println!("  R-hat (4 chains):        {rhat:.3}   (want ~1.0, flag > 1.1)");
    println!("  ESS per 45-sample chain: {ess:.1}");
    println!("  lag-1 autocorrelation:   {acf1:.3}");
    println!("  |Geweke z| (mean):       {geweke:.2}   (want < 2)");
}

fn main() {
    println!(
        "workload: stereo matching 32x24 ({} variables, 16 labels), 60 sweeps,\n\
         energy tracked per sweep, first 15 discarded\n",
        32 * 24
    );
    examine("float32 reference", PipelineConfig::float32());
    examine(
        "CoopMC 64x8 (the paper's design point)",
        PipelineConfig::coopmc(64, 8),
    );
    examine("CoopMC 8x2 (starved LUT)", PipelineConfig::coopmc(8, 2));
    println!(
        "\nreading: the paper-point datapath is statistically \
         indistinguishable from float32. (A starved LUT can still look \
         healthy on MRF energy chains — its damage shows in goodness-of-fit \
         metrics like the BN marginal TV of `robustness_diagnostics`.)"
    );

    // Bonus: what the chain actually samples, for one variable.
    let app = stereo_matching(32, 24, 7);
    let mut model = app.mrf.clone();
    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(64, 8).build(),
        TreeSampler::new(),
        SplitMix64::new(5),
    );
    let mut stats = RunStats::default();
    let var = 12 * 32 + 16; // mid-grid pixel
    let mut trace = Vec::new();
    for _ in 0..40 {
        engine.sweep(&mut model, &mut stats);
        trace.push(model.label(var));
    }
    println!("\nlabel trace of pixel (16, 12) under CoopMC 64x8: {trace:?}");
}
