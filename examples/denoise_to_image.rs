//! Render the image-restoration workload end to end: writes the corrupted
//! input, the CoopMC restoration and the float32 restoration as PGM images
//! you can open in any viewer, plus an annealed MAP variant.
//!
//! Run with: `cargo run --release --example denoise_to_image`
//! Outputs: `target/denoise_*.pgm`

use std::fs;
use std::io::Write as _;

use coopmc::core::engine::GibbsEngine;
use coopmc::core::metropolis::{anneal_mrf, AnnealingSchedule};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::metrics::mse;
use coopmc::models::mrf::{image_restoration, GridMrf};
use coopmc::models::GibbsModel;
use coopmc::rng::SplitMix64;
use coopmc::sampler::TreeSampler;

/// Write a label field as a binary PGM (levels scaled to 0..=255).
fn write_pgm(path: &str, labels: &[usize], width: usize, height: usize, n_labels: usize) {
    let mut buf = format!("P5\n{width} {height}\n255\n").into_bytes();
    buf.extend(labels.iter().map(|&l| (l * 255 / (n_labels - 1)) as u8));
    fs::File::create(path)
        .and_then(|mut f| f.write_all(&buf))
        .expect("failed to write PGM");
}

fn restore(mrf: &GridMrf, config: PipelineConfig, sweeps: u64) -> Vec<usize> {
    let mut model = mrf.clone();
    let mut engine = GibbsEngine::new(config.build(), TreeSampler::new(), SplitMix64::new(7));
    engine.run(&mut model, sweeps);
    model.labels()
}

fn main() {
    let (w, h, n_labels) = (96, 64, 64);
    let app = image_restoration(w, h, 2024);
    fs::create_dir_all("target").expect("target dir");

    write_pgm("target/denoise_clean.pgm", &app.clean, w, h, n_labels);
    write_pgm(
        "target/denoise_noisy.pgm",
        &app.mrf.labels(),
        w,
        h,
        n_labels,
    );

    println!("{:<26} {:>14}", "variant", "MSE vs clean");
    println!(
        "{:<26} {:>14.1}",
        "corrupted input",
        mse(&app.mrf.labels(), &app.clean)
    );

    let float = restore(&app.mrf, PipelineConfig::float32(), 120);
    write_pgm("target/denoise_float32.pgm", &float, w, h, n_labels);
    println!("{:<26} {:>14.1}", "float32 Gibbs", mse(&float, &app.clean));

    let coop = restore(&app.mrf, PipelineConfig::coopmc(64, 8), 120);
    write_pgm("target/denoise_coopmc.pgm", &coop, w, h, n_labels);
    println!(
        "{:<26} {:>14.1}",
        "CoopMC 64x8 Gibbs",
        mse(&coop, &app.clean)
    );

    // Annealed MAP: sharper restoration of the piecewise-smooth scene.
    let mut annealed = app.mrf.clone();
    let schedule = AnnealingSchedule {
        beta0: 0.2,
        rate: 1.08,
        beta_max: 3.0,
    };
    let energy = anneal_mrf(
        &mut annealed,
        PipelineConfig::coopmc(64, 8).build(),
        schedule,
        120,
        SplitMix64::new(7),
    );
    write_pgm(
        "target/denoise_annealed.pgm",
        &annealed.labels(),
        w,
        h,
        n_labels,
    );
    println!(
        "{:<26} {:>14.1}   (final energy {energy:.0})",
        "CoopMC annealed MAP",
        mse(&annealed.labels(), &app.clean)
    );

    println!("\nwrote target/denoise_{{clean,noisy,float32,coopmc,annealed}}.pgm");
}
