//! Watch the hardware work: drive the structural (netlist-level) circuits
//! of the paper's micro-architecture diagrams cycle by cycle and check them
//! against the behavioral models — PG core (Fig. 6), NormTree (Fig. 3) and
//! the pipelined TreeSampler (Fig. 8).
//!
//! Run with: `cargo run --release --example hardware_trace`

use coopmc::kernels::dynorm::dynorm_apply;
use coopmc::kernels::exp::{ExpKernel, TableExp};
use coopmc::sampler::{Sampler, TreeSampler};
use coopmc::sim::circuits::{NormTreeCircuit, PgCoreCircuit, PipeTreeSamplerCircuit};

fn main() {
    // --- Fig. 6: the fused PG core, 4 lanes x 3 factors, 64x8 TableExp ---
    println!("PG core (4 lanes, 3 log-domain factors each, TableExp 64x8):");
    let mut core = PgCoreCircuit::new(4, 3, 64, 8);
    let factors = vec![
        vec![-4.0, -3.0, -2.0],
        vec![-1.0, -1.0, -0.5],
        vec![-2.0, -0.25, -1.0],
        vec![-6.0, -5.0, -4.0],
    ];
    let structural = core.evaluate(&factors);
    let mut scores: Vec<f64> = factors.iter().map(|f| f.iter().sum()).collect();
    println!("  lane scores (log domain): {scores:?}");
    dynorm_apply(&mut scores, 4);
    let table = TableExp::new(64, 8);
    let behavioral: Vec<f64> = scores.iter().map(|&s| table.exp(s)).collect();
    println!("  structural outputs:       {structural:?}");
    println!("  behavioral reference:     {behavioral:?}");
    assert_eq!(structural, behavioral);
    let census = core.descriptor().census();
    println!(
        "  netlist census: {} adders, {} comparators, {} LUT ROMs\n",
        census.adders, census.comparators, census.luts
    );

    // --- Fig. 3: pipelined NormTree streaming one vector per cycle ---
    println!("pipelined NormTree (8 lanes) streaming maxima:");
    let mut tree = NormTreeCircuit::new(8);
    let depth = tree.depth();
    let vectors: Vec<Vec<f64>> = (0..6)
        .map(|k| (0..8).map(|i| -(((i * 5 + k * 3) % 13) as f64)).collect())
        .collect();
    let mut outs = Vec::new();
    for v in &vectors {
        outs.push(tree.step(v));
    }
    for _ in 0..depth {
        outs.push(tree.step(&[f64::MIN; 8]));
    }
    for (k, v) in vectors.iter().enumerate() {
        let want = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  cycle {k}: vector max {want:>5}  tree output {:>5}",
            outs[k + depth - 1]
        );
        assert_eq!(outs[k + depth - 1], want);
    }

    // --- Fig. 8: pipelined TreeSampler, one sample per cycle ---
    println!("\npipelined TreeSampler (16 labels), one fresh draw per cycle:");
    let n_labels = 16;
    let mut sampler = PipeTreeSamplerCircuit::new(n_labels);
    let behavioral = TreeSampler::new();
    let latency = sampler.latency();
    println!("  latency: {latency} cycles; steady-state throughput: 1 label/cycle");
    let pairs: Vec<(Vec<f64>, f64)> = (0..8)
        .map(|k| {
            let probs: Vec<f64> = (0..n_labels)
                .map(|i| 1.0 + ((i * 3 + k) % 7) as f64)
                .collect();
            let total: f64 = probs.iter().sum();
            (probs, total * (k as f64 + 0.5) / 8.5)
        })
        .collect();
    let mut labels = Vec::new();
    for (p, t) in &pairs {
        labels.push(sampler.step(p, *t));
    }
    let (lp, lt) = pairs.last().unwrap().clone();
    for _ in 0..latency {
        labels.push(sampler.step(&lp, lt));
    }
    for (k, (p, t)) in pairs.iter().enumerate() {
        let want = behavioral.sample_with_threshold(p, *t).label;
        let got = labels[k + latency];
        println!("  draw {k}: threshold {t:>7.2} -> label {got:>2} (behavioral: {want:>2})");
        assert_eq!(got, want);
    }
    println!("\nall structural outputs match the behavioral models exactly.");
}
