//! Image restoration with a 64-label MRF: the paper's flagship workload
//! (and the §IV-D case-study configuration).
//!
//! Restores a synthetic grayscale image corrupted by Gaussian noise and
//! black occlusion boxes, sweeping exp-kernel precision to show the Fig. 2 /
//! Fig. 10 effect: low-precision fixed point fails without DyNorm and
//! matches float32 with it. Finishes with the hardware model's verdict on
//! the corresponding accelerator core.
//!
//! Run with: `cargo run --release --example image_restoration`

use coopmc::core::experiments::{mrf_golden, mrf_trace};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::hw::accel::case_study_table;
use coopmc::models::metrics::mse;
use coopmc::models::mrf::image_restoration;
use coopmc::models::GibbsModel;

fn main() {
    let app = image_restoration(48, 32, 7);
    let noisy_mse = mse(&app.mrf.labels(), &app.clean);
    println!("corrupted input MSE vs clean image: {noisy_mse:.2} (64 gray levels)");

    let golden = mrf_golden(&app, 60, 4242);
    println!(
        "golden (float32, 60 sweeps) MSE vs clean: {:.2}",
        mse(&golden, &app.clean)
    );

    println!("\nconvergence of normalized MSE (lower is better):");
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8}",
        "datapath", "it=5", "it=10", "it=20", "it=30"
    );
    for config in [
        PipelineConfig::float32(),
        PipelineConfig::fixed(4),
        PipelineConfig::fixed_dynorm(4),
        PipelineConfig::fixed_dynorm(8),
        PipelineConfig::coopmc(32, 8),
        PipelineConfig::coopmc(1024, 32),
    ] {
        let trace = mrf_trace(&app, config, 30, 11, &golden);
        let at = |it: u64| {
            trace
                .samples()
                .iter()
                .find(|&&(i, _)| i == it)
                .map(|&(_, v)| v)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<20} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            config.build().name(),
            at(5),
            at(10),
            at(20),
            at(30)
        );
    }

    println!("\nhardware verdict for this 64-label workload (Table IV model):");
    println!(
        "{:<12} {:>12} {:>8} {:>8} {:>9}",
        "version", "area (um2)", "area%", "power%", "speedup"
    );
    for (report, area, power, speedup) in case_study_table() {
        println!(
            "{:<12} {:>12.0} {:>7.0}% {:>7.0}% {:>8.2}x",
            report.config.name,
            report.area.total(),
            100.0 * area,
            100.0 * power,
            speedup
        );
    }
}
