//! Medical diagnosis with the ASIA chest-clinic Bayesian network: query
//! posteriors under evidence, with Gibbs estimates cross-checked against
//! exact variable-elimination inference.
//!
//! Run with: `cargo run --release --example medical_diagnosis`

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::bn::{asia, exact_marginal, MarginalCounter};
use coopmc::rng::SplitMix64;
use coopmc::sampler::TreeSampler;

fn main() {
    let mut net = asia();

    // A patient who visited Asia and presents with dyspnoea.
    let asia_ix = net.node_index("asia").unwrap();
    let dysp_ix = net.node_index("dysp").unwrap();
    net.set_evidence(asia_ix, 0);
    net.set_evidence(dysp_ix, 0);
    println!("evidence: visited Asia = yes, dyspnoea = yes\n");

    // Exact posteriors by variable elimination.
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "node", "exact P(yes)", "gibbs P(yes)", "error"
    );
    let targets = ["tub", "lung", "bronc", "either", "xray", "smoke"];

    // Gibbs estimate through the full CoopMC datapath.
    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(128, 16).build(),
        TreeSampler::new(),
        SplitMix64::new(2024),
    );
    let mut counter = MarginalCounter::new(&net);
    let mut stats = RunStats::default();
    let burn_in = 500u64;
    for it in 0..10_000u64 {
        engine.sweep(&mut net, &mut stats);
        if it >= burn_in {
            counter.record(&net);
        }
    }

    for name in targets {
        let ix = net.node_index(name).unwrap();
        let exact = exact_marginal(&net, ix)[0];
        let gibbs = counter.marginal(ix)[0];
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>10.4}",
            name,
            exact,
            gibbs,
            (exact - gibbs).abs()
        );
    }

    let (pg, sd, pu) = stats.breakdown_percent();
    println!(
        "\n{} sweeps through the CoopMC datapath; breakdown PG {pg:.0}% SD {sd:.0}% PU {pu:.0}%",
        10_000
    );
    println!("(compare Table II: BN workloads are SD-dominated on CPUs)");
}
