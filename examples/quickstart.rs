//! Quickstart: the three-step CoopMC flow on a small image-segmentation
//! MRF, comparing a float32 datapath with the full CoopMC datapath
//! (DyNorm + TableExp + LogFusion) and the TreeSampler.
//!
//! Run with: `cargo run --release --example quickstart`

use coopmc::core::engine::GibbsEngine;
use coopmc::core::experiments::{mrf_converged_nmse, mrf_golden};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::mrf::image_segmentation;
use coopmc::rng::SplitMix64;
use coopmc::sampler::{Sampler, TreeSampler};

fn main() {
    // 1. Build a workload: a 48x32 foreground/background segmentation MRF.
    let app = image_segmentation(48, 32, 42);
    println!(
        "workload: {} ({} variables, {} labels)",
        app.name,
        48 * 32,
        2
    );

    // 2. Produce the golden reference with the vanilla float algorithm.
    let golden = mrf_golden(&app, 60, 999);

    // 3. Run the same inference on three datapaths and compare quality.
    println!("\n{:<22} {:>16}", "datapath", "normalized MSE");
    for config in [
        PipelineConfig::float32(),
        PipelineConfig::fixed(8),        // plain 8-bit fixed point: degrades
        PipelineConfig::fixed_dynorm(8), // DyNorm rescues it
        PipelineConfig::coopmc(64, 8),   // full CoopMC: LUT-based kernels
    ] {
        let nmse = mrf_converged_nmse(&app, config, 30, 7, &golden);
        println!("{:<22} {:>16.4}", config.build().name(), nmse);
    }

    // 4. Peek under the hood: the engine exposes the PG/SD/PU breakdown.
    let mut model = app.mrf.clone();
    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(64, 8).build(),
        TreeSampler::new(),
        SplitMix64::new(1),
    );
    let stats = engine.run(&mut model, 10);
    let (pg, sd, pu) = stats.breakdown_percent();
    println!("\nruntime breakdown over 10 sweeps: PG {pg:.1}%  SD {sd:.1}%  PU {pu:.1}%");
    println!(
        "sampler latency: {} cycles per 2-label draw (tree) vs {} (sequential)",
        TreeSampler::new().latency_cycles(2),
        coopmc::sampler::SequentialSampler::new().latency_cycles(2),
    );
}
