//! Topic modelling with collapsed-Gibbs LDA: the paper's LogFusion
//! showcase, since every topic score is a multiply/divide factor expression
//! (Eq. 6).
//!
//! Fits a synthetic corpus with planted topics, then checks how much of the
//! planted structure the sampler recovered and how the LUT precision
//! (Fig. 13's axes) affects the converged log-likelihood.
//!
//! Run with: `cargo run --release --example topic_modeling`

use coopmc::core::experiments::{lda_converged_loglik, lda_trace};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::lda::{synthetic_corpus, CorpusSpec, Lda};

fn main() {
    let spec = CorpusSpec {
        n_docs: 80,
        n_vocab: 200,
        n_topics: 8,
        doc_len: 60,
        topics_per_doc: 2,
        seed: 17,
    };
    let corpus = synthetic_corpus(&spec);
    let mut lda = Lda::new(&corpus, spec.n_topics, 50.0 / spec.n_topics as f64, 0.01);
    lda.randomize_topics(5);
    println!(
        "corpus: {} docs, {} tokens, vocab {}, {} planted topics",
        spec.n_docs,
        corpus.tokens.len(),
        spec.n_vocab,
        spec.n_topics
    );
    println!("initial log-likelihood: {:.0}", lda.log_likelihood());

    // Convergence under the float reference.
    let trace = lda_trace(&lda, PipelineConfig::float32(), 30, 3);
    println!("\nfloat32 log-likelihood trace:");
    for &(it, ll) in trace.samples().iter().filter(|&&(it, _)| it % 5 == 0) {
        println!("  sweep {it:>3}: {ll:>10.0}");
    }

    // The Fig. 13 axes: converged quality vs LUT precision.
    println!("\nconverged log-likelihood vs TableExp parameters (30 sweeps):");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "size_lut", "4-bit", "8-bit", "16-bit"
    );
    for size in [16usize, 64, 256] {
        let row: Vec<f64> = [4u32, 8, 16]
            .iter()
            .map(|&bits| lda_converged_loglik(&lda, PipelineConfig::coopmc(size, bits), 30, 3))
            .collect();
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>12.0}",
            size, row[0], row[1], row[2]
        );
    }
    let float_ll = lda_converged_loglik(&lda, PipelineConfig::float32(), 30, 3);
    println!("{:<10} {:>38.0}", "float32", float_ll);

    println!(
        "\nhigher is better; expect the high-precision LUT rows to approach the float32 line."
    );
}
