//! # CoopMC
//!
//! A from-scratch Rust reproduction of *CoopMC: Algorithm-Architecture
//! Co-Optimization for Markov Chain Monte Carlo Accelerators* (HPCA 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`fixed`] — bit-true fixed-point arithmetic ([`coopmc_fixed`])
//! - [`rng`] — hardware-style PRNGs ([`coopmc_rng`])
//! - [`kernels`] — DyNorm, TableExp, LogFusion and baseline datapaths
//!   ([`coopmc_kernels`])
//! - [`sampler`] — sequential / tree / pipelined-tree samplers
//!   ([`coopmc_sampler`])
//! - [`hw`] — area, power, cycle and roofline models ([`coopmc_hw`])
//! - [`models`] — MRF, Bayesian-network and LDA substrates
//!   ([`coopmc_models`])
//! - [`core`] — probability-generation pipelines and the Gibbs engine
//!   ([`coopmc_core`])
//! - [`sim`] — structural (netlist-level) circuits of the paper's
//!   micro-architecture diagrams ([`coopmc_sim`])
//! - [`analyze`] — static range/bit-width verification and the chromatic
//!   race detector ([`coopmc_analyze`])
//! - [`obs`] — metrics, zero-overhead tracing and the run journal
//!   ([`coopmc_obs`])
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the binaries that regenerate every table and figure of
//! the paper.

pub use coopmc_analyze as analyze;
pub use coopmc_core as core;
pub use coopmc_fixed as fixed;
pub use coopmc_hw as hw;
pub use coopmc_kernels as kernels;
pub use coopmc_models as models;
pub use coopmc_obs as obs;
pub use coopmc_rng as rng;
pub use coopmc_sampler as sampler;
pub use coopmc_sim as sim;
