//! `coopmc` — command-line front end for the CoopMC reproduction.
//!
//! ```text
//! coopmc list
//! coopmc run <workload> [--pipeline SPEC] [--sampler KIND] [--sweeps N]
//!                       [--seed S] [--threads T]
//!                       [--health] [--early-stop-rhat R] [--early-stop-ess E]
//!                       [--journal-out F] [--trace-out F] [--metrics-out F]
//! coopmc hw [--labels N]
//! coopmc verify [--json] [--demo-broken] [--only SECTION]
//! ```
//!
//! Pipeline SPECs: `float32`, `fixed:<bits>`, `fixed+dn:<bits>`,
//! `coopmc:<size>x<bits>`. Sampler KINDs: `seq`, `tree`, `pipe`, `alias`.
//!
//! `--health` streams chain-health diagnostics (online ESS / rank-normalized
//! split R-hat / MCSE, anomaly detectors) while the chain runs; the
//! early-stop flags additionally end the run once rank-normalized R-hat ≤ R
//! **and** windowed ESS ≥ E (each implies `--health`; the other threshold
//! defaults to R = 1.01, E = 100).

use std::process::ExitCode;

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::parallel::ChromaticEngine;
use coopmc::core::pipeline::{CoopMcPipeline, PipelineConfig, ProbabilityPipeline};
use coopmc::hw::accel::case_study_table;
use coopmc::hw::area::{sampler_area, SamplerKind};
use coopmc::hw::reconcile::divergence_ledger;
use coopmc::hw::roofline::roofline;
use coopmc::models::workloads::{all_workloads, BuiltWorkload, WorkloadSpec};
use coopmc::models::GibbsModel;
use coopmc::obs::health::{ChainHealth, ConvergenceController, Decision, EarlyStop, HealthConfig};
use coopmc::obs::{NoopRecorder, Profiled, Recorder, SpanProfiler, TraceRecorder};
use coopmc::rng::{HwRng, SplitMix64};
use coopmc::sampler::{AliasSampler, PipeTreeSampler, Sampler, SequentialSampler, TreeSampler};

/// Parsed `run` subcommand options.
#[derive(Debug, Clone, PartialEq)]
struct RunArgs {
    workload: String,
    pipeline: PipelineConfig,
    sampler: String,
    sweeps: u64,
    seed: u64,
    threads: usize,
    health: bool,
    early_stop_rhat: Option<f64>,
    early_stop_ess: Option<f64>,
    journal_out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile: bool,
    flame_out: Option<String>,
    profile_out: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            workload: String::new(),
            pipeline: PipelineConfig::coopmc(64, 8),
            sampler: "tree".to_owned(),
            sweeps: 20,
            seed: 2022,
            threads: 1,
            health: false,
            early_stop_rhat: None,
            early_stop_ess: None,
            journal_out: None,
            trace_out: None,
            metrics_out: None,
            profile: false,
            flame_out: None,
            profile_out: None,
        }
    }
}

impl RunArgs {
    /// Whether chain-health monitoring runs (either requested directly or
    /// implied by an early-stop threshold).
    fn health_enabled(&self) -> bool {
        self.health || self.early_stop_rhat.is_some() || self.early_stop_ess.is_some()
    }

    /// Whether the kernel profiler runs (requested directly or implied by a
    /// profiler output file).
    fn profile_enabled(&self) -> bool {
        self.profile || self.flame_out.is_some() || self.profile_out.is_some()
    }
}

/// Parse a pipeline spec string.
fn parse_pipeline(spec: &str) -> Result<PipelineConfig, String> {
    if spec == "float32" {
        return Ok(PipelineConfig::float32());
    }
    if let Some(bits) = spec.strip_prefix("fixed+dn:") {
        let b: u32 = bits.parse().map_err(|_| format!("bad bits in '{spec}'"))?;
        return Ok(PipelineConfig::fixed_dynorm(b));
    }
    if let Some(bits) = spec.strip_prefix("fixed:") {
        let b: u32 = bits.parse().map_err(|_| format!("bad bits in '{spec}'"))?;
        return Ok(PipelineConfig::fixed(b));
    }
    if let Some(rest) = spec.strip_prefix("coopmc:") {
        let (size, bits) = rest
            .split_once('x')
            .ok_or_else(|| format!("expected coopmc:<size>x<bits>, got '{spec}'"))?;
        let s: usize = size.parse().map_err(|_| format!("bad size in '{spec}'"))?;
        let b: u32 = bits.parse().map_err(|_| format!("bad bits in '{spec}'"))?;
        return Ok(PipelineConfig::coopmc(s, b));
    }
    Err(format!(
        "unknown pipeline '{spec}' (try float32, fixed:8, fixed+dn:8, coopmc:64x8)"
    ))
}

/// Parse the argument list of `run`.
fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    out.workload = it
        .next()
        .ok_or("missing workload name (see `coopmc list`)")?
        .clone();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--pipeline" => out.pipeline = parse_pipeline(&value(&mut it)?)?,
            "--sampler" => {
                let v = value(&mut it)?;
                if !["seq", "tree", "pipe", "alias"].contains(&v.as_str()) {
                    return Err(format!("unknown sampler '{v}'"));
                }
                out.sampler = v;
            }
            "--sweeps" => {
                out.sweeps = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --sweeps value".to_owned())?
            }
            "--seed" => {
                out.seed = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --seed value".to_owned())?
            }
            "--threads" => {
                out.threads = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --threads value".to_owned())?;
                if out.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--health" => out.health = true,
            "--early-stop-rhat" => {
                let r: f64 = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --early-stop-rhat value".to_owned())?;
                if !(r.is_finite() && r >= 1.0) {
                    return Err("--early-stop-rhat must be a finite number >= 1.0".to_owned());
                }
                out.early_stop_rhat = Some(r);
            }
            "--early-stop-ess" => {
                let e: f64 = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --early-stop-ess value".to_owned())?;
                if !(e.is_finite() && e > 0.0) {
                    return Err("--early-stop-ess must be a finite number > 0".to_owned());
                }
                out.early_stop_ess = Some(e);
            }
            "--journal-out" => out.journal_out = Some(value(&mut it)?),
            "--trace-out" => out.trace_out = Some(value(&mut it)?),
            "--metrics-out" => out.metrics_out = Some(value(&mut it)?),
            "--profile" => out.profile = true,
            "--flame-out" => out.flame_out = Some(value(&mut it)?),
            "--profile-out" => out.profile_out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn find_workload(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| {
        w.name.eq_ignore_ascii_case(name) || w.name.to_lowercase().contains(&name.to_lowercase())
    })
}

fn build_sampler(kind: &str) -> Box<dyn Sampler> {
    match kind {
        "seq" => Box::new(SequentialSampler::new()),
        "pipe" => Box::new(PipeTreeSampler::new()),
        "alias" => Box::new(AliasSampler::new()),
        _ => Box::new(TreeSampler::new()),
    }
}

fn cmd_list() {
    println!(
        "{:<30} {:>12} {:>8}  (paper scale)",
        "workload", "#variables", "#labels"
    );
    for w in all_workloads() {
        println!(
            "{:<30} {:>12} {:>8}",
            w.name, w.paper_variables, w.paper_labels
        );
    }
}

/// Write `contents` to `path`, mapping IO errors to a CLI-friendly string.
fn write_output(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// R-hat threshold used when only `--early-stop-ess` names a target.
const DEFAULT_STOP_RHAT: f64 = 1.01;
/// ESS budget used when only `--early-stop-rhat` names a target.
const DEFAULT_STOP_ESS: f64 = 100.0;

/// Build the convergence controller for a `--health` run. Without an
/// early-stop flag this is a pure monitor (never stops the chain); with one,
/// the other threshold falls back to its default. `recorder` is attached
/// only when an output file will consume the journal.
fn build_controller<'a>(args: &RunArgs, recorder: Option<&'a dyn Recorder>) -> EarlyStop<'a> {
    let health = ChainHealth::new(0, HealthConfig::default());
    let early = args.early_stop_rhat.is_some() || args.early_stop_ess.is_some();
    let mut ctl = if early {
        EarlyStop::new(
            health,
            args.early_stop_rhat.unwrap_or(DEFAULT_STOP_RHAT),
            args.early_stop_ess.unwrap_or(DEFAULT_STOP_ESS),
        )
    } else {
        EarlyStop::monitor(health)
    };
    if let Some(rec) = recorder {
        ctl = ctl.with_recorder(rec);
    }
    ctl
}

/// Print the end-of-run health summary (the `early-stop:` line is what CI
/// greps to check the run ended inside its sweep budget).
fn report_health(ctl: &EarlyStop, budget: u64) {
    let opt = |v: Option<f64>| v.map_or("n/a".to_owned(), |x| format!("{x:.4}"));
    let info = ctl.stop_info();
    let rec = ctl.health().record();
    if info.stopped_early {
        println!(
            "early-stop: converged at sweep {} of {} (rhat {}, ess {})",
            info.iteration,
            budget,
            opt(info.rhat),
            opt(info.ess)
        );
    } else {
        println!(
            "health: ran all {budget} sweeps (rhat {}, ess {}, mcse {})",
            opt(rec.rhat),
            opt(rec.ess),
            opt(rec.mcse)
        );
    }
    println!(
        "health: flip-rate {:.4}, events stuck/drift/fallback {}/{}/{}",
        rec.flip_rate, rec.events_stuck, rec.events_drift, rec.events_fallback
    );
}

/// Drive up to `sweeps` manual sweeps of a sequential engine, reporting the
/// per-sweep statistic from `stat_fn` to `observer` (journal capture) and to
/// `controller` (health / early stop). The manual loop exists because the
/// interesting statistics (energy, joint probability, log-likelihood) live
/// on the concrete model types, which `GibbsEngine::run_controlled`'s
/// `&dyn GibbsModel` callback cannot see.
fn drive_gibbs<P, S, R, Rec, M, F>(
    engine: &mut GibbsEngine<P, S, R, Rec>,
    model: &mut M,
    sweeps: u64,
    observer: Option<&dyn Recorder>,
    mut stat_fn: F,
    mut controller: Option<&mut EarlyStop<'_>>,
) where
    P: ProbabilityPipeline,
    S: Sampler,
    R: HwRng,
    Rec: Recorder,
    M: GibbsModel,
    F: FnMut(&M) -> f64,
{
    let mut stats = RunStats::default();
    for _ in 0..sweeps {
        let (u0, f0, fb0) = (stats.updates, stats.flips, stats.uniform_fallbacks);
        engine.sweep(model, &mut stats);
        let stat = stat_fn(model);
        let it = engine.journal_iteration();
        if let Some(rec) = observer {
            rec.observe_stat(0, it, stat);
        }
        if let Some(ctl) = controller.as_deref_mut() {
            let decision = ctl.observe_sweep(
                it,
                stats.updates - u0,
                stats.flips - f0,
                stats.uniform_fallbacks - fb0,
                Some(stat),
            );
            if decision == Decision::Stop {
                break;
            }
        }
    }
}

/// Divergence-ledger gate for profiled CLI runs: a modeled kernel's share
/// of measured self time may differ from its share of modeled cycles by at
/// most this much. Host wall-clock shares are only loosely coupled to
/// modeled accelerator cycles, so the gate is deliberately wide — it
/// catches attribution bugs (a kernel losing its timing leaves or its cycle
/// feed), not model precision.
const PROFILE_DIVERGENCE_TOLERANCE: f64 = 0.5;

/// Execute the built workload with `rec` as the engines' recorder. Generic
/// so one body serves the plain `&TraceRecorder` and both [`Profiled`]
/// shapes (journal + profiler, profiler only).
fn run_workload<Rec: Recorder + Copy>(
    args: &RunArgs,
    built: BuiltWorkload,
    rec: Rec,
    controller: Option<&mut EarlyStop<'_>>,
) -> Result<(), String> {
    let tracing =
        args.journal_out.is_some() || args.trace_out.is_some() || args.metrics_out.is_some();
    let observing = tracing || rec.prof_enabled();
    let observer = observing.then_some(&rec as &dyn Recorder);
    match built {
        BuiltWorkload::Mrf(mut app) => {
            let e0 = app.mrf.energy();
            if args.threads > 1 {
                let (size, bits) = match args.pipeline {
                    PipelineConfig::CoopMc { size_lut, bit_lut } => (size_lut, bit_lut),
                    _ => {
                        return Err(
                            "--threads > 1 currently supports only coopmc pipelines".to_owned()
                        )
                    }
                };
                let pipeline = CoopMcPipeline::new(size, bits);
                match (observing, controller) {
                    (true, Some(ctl)) => {
                        ChromaticEngine::with_recorder(pipeline, args.threads, args.seed, rec)
                            .run_controlled(&mut app.mrf, args.sweeps, |m| Some(m.energy()), ctl);
                    }
                    (true, None) => {
                        ChromaticEngine::with_recorder(pipeline, args.threads, args.seed, rec)
                            .run_observed(&mut app.mrf, args.sweeps, |it, m| {
                                rec.observe_stat(0, it, m.energy());
                            });
                    }
                    (false, Some(ctl)) => {
                        ChromaticEngine::new(pipeline, args.threads, args.seed).run_controlled(
                            &mut app.mrf,
                            args.sweeps,
                            |m| Some(m.energy()),
                            ctl,
                        );
                    }
                    (false, None) => {
                        ChromaticEngine::new(pipeline, args.threads, args.seed)
                            .run(&mut app.mrf, args.sweeps);
                    }
                }
            } else if observing || controller.is_some() {
                let mut engine = GibbsEngine::with_recorder(
                    args.pipeline.build(),
                    TreeSampler::new(),
                    SplitMix64::new(args.seed),
                    rec,
                );
                drive_gibbs(
                    &mut engine,
                    &mut app.mrf,
                    args.sweeps,
                    observer,
                    |m| m.energy(),
                    controller,
                );
            } else {
                let mut engine = GibbsEngine::new(
                    args.pipeline.build(),
                    TreeSampler::new(),
                    SplitMix64::new(args.seed),
                );
                engine.run(&mut app.mrf, args.sweeps);
            }
            println!("energy: {e0:.1} -> {:.1}", app.mrf.energy());
        }
        BuiltWorkload::Bn(mut net) => {
            let mut counter = coopmc::models::bn::MarginalCounter::new(&net);
            if observing || controller.is_some() {
                let mut engine = GibbsEngine::with_recorder(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                    rec,
                );
                drive_gibbs(
                    &mut engine,
                    &mut net,
                    args.sweeps,
                    observer,
                    |n| {
                        counter.record(n);
                        n.joint_prob().ln()
                    },
                    controller,
                );
            } else {
                let mut engine = GibbsEngine::new(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                );
                let mut stats = RunStats::default();
                for _ in 0..args.sweeps {
                    engine.sweep(&mut net, &mut stats);
                    counter.record(&net);
                }
            }
            println!("{:<14} {:>10}", "node", "P(label 0)");
            for v in 0..net.num_variables() {
                println!(
                    "{:<14} {:>10.4}",
                    net.nodes()[v].name,
                    counter.marginal(v)[0]
                );
            }
        }
        BuiltWorkload::Lda(mut lda) => {
            let ll0 = lda.log_likelihood();
            if observing || controller.is_some() {
                let mut engine = GibbsEngine::with_recorder(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                    rec,
                );
                drive_gibbs(
                    &mut engine,
                    &mut lda,
                    args.sweeps,
                    observer,
                    |l| l.log_likelihood(),
                    controller,
                );
            } else {
                let mut engine = GibbsEngine::new(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                );
                engine.run(&mut lda, args.sweeps);
            }
            println!("log-likelihood: {ll0:.0} -> {:.0}", lda.log_likelihood());
        }
    }
    Ok(())
}

fn cmd_run(args: RunArgs) -> Result<(), String> {
    let spec = find_workload(&args.workload)
        .ok_or_else(|| format!("no workload matches '{}'", args.workload))?;
    println!(
        "running {} | pipeline {:?} | sampler {} | {} sweeps | seed {} | {} thread(s)",
        spec.name, args.pipeline, args.sampler, args.sweeps, args.seed, args.threads
    );
    let tracing =
        args.journal_out.is_some() || args.trace_out.is_some() || args.metrics_out.is_some();
    let recorder = TraceRecorder::new();
    // Lane 0 is the coordinator; lanes 1..=threads are pool worker slots.
    let profiler = args
        .profile_enabled()
        .then(|| SpanProfiler::new(args.threads + 1));
    let mut controller = args
        .health_enabled()
        .then(|| build_controller(&args, tracing.then_some(&recorder as &dyn Recorder)));
    let built = spec.build(args.seed);
    match (&profiler, tracing) {
        (Some(p), true) => run_workload(
            &args,
            built,
            Profiled::new(&recorder, p),
            controller.as_mut(),
        )?,
        (Some(p), false) => run_workload(
            &args,
            built,
            Profiled::new(NoopRecorder, p),
            controller.as_mut(),
        )?,
        (None, _) => run_workload(&args, built, &recorder, controller.as_mut())?,
    }
    if let Some(ctl) = &controller {
        report_health(ctl, args.sweeps);
    }
    if let Some(p) = &profiler {
        if let Some(path) = &args.flame_out {
            write_output(path, &p.flamegraph())?;
        }
        if let Some(path) = &args.profile_out {
            write_output(path, &p.journal_jsonl(0))?;
        }
        if args.trace_out.is_some() {
            // Merge kernel spans into the Chrome trace. The profiler and
            // the trace recorder run on different epochs; skew maps the
            // profiler's clock onto the recorder's. Lanes become pseudo
            // thread ids above 1000 so they sort after the chain rows.
            let skew = recorder.now_ns().saturating_sub(p.now_ns());
            for (lane, kernel, start_ns, dur_ns) in p.ring_spans() {
                recorder.span(
                    kernel.name(),
                    "kernel",
                    start_ns + skew,
                    dur_ns,
                    1000 + lane as u64,
                );
            }
        }
    }
    if let Some(path) = &args.journal_out {
        let mut journal = recorder.journal_jsonl();
        if let Some(p) = &profiler {
            journal.push_str(&p.journal_jsonl(0));
        }
        write_output(path, &journal)?;
    }
    if let Some(path) = &args.trace_out {
        write_output(path, &recorder.chrome_trace_json())?;
    }
    if let Some(path) = &args.metrics_out {
        write_output(path, &coopmc::obs::render())?;
    }
    if let Some(p) = &profiler {
        // The divergence ledger is the profiled run's exit gate: artifacts
        // above are written first so a failing run still leaves evidence.
        let ledger = divergence_ledger(&p.kernel_reports(), PROFILE_DIVERGENCE_TOLERANCE)?;
        print!("{}", ledger.report());
        ledger.check()?;
    }
    Ok(())
}

fn cmd_hw(labels: usize) {
    println!("end-to-end case study at {labels} labels (Table IV model):");
    println!(
        "{:<12} {:>12} {:>8} {:>8} {:>9}",
        "version", "area um2", "area%", "power%", "speedup"
    );
    for (report, area, power, speedup) in case_study_table() {
        println!(
            "{:<12} {:>12.0} {:>7.0}% {:>7.0}% {:>8.2}x",
            report.config.name,
            report.area.total(),
            100.0 * area,
            100.0 * power,
            speedup
        );
        let r = roofline(report.cycles_per_variable);
        assert!(r.compute_bound);
    }
    println!("\nsampler areas at {labels} labels:");
    for kind in [
        SamplerKind::Sequential,
        SamplerKind::Tree,
        SamplerKind::PipeTree,
    ] {
        println!(
            "  {:<11} {:>10.0} um2",
            kind.name(),
            sampler_area(kind, labels, 32).total()
        );
    }
}

/// Run the static verifier (same sweep as the `coopmc-verify` binary) and
/// report success as an exit-code-style `Result`. With `export_schematic`,
/// first write the canonical circuits' graphviz/JSON schematics there.
fn cmd_verify(
    demo_broken: bool,
    json: bool,
    only: Option<&str>,
    export_schematic: Option<&str>,
) -> Result<(), String> {
    if let Some(dir) = export_schematic {
        let written = coopmc::analyze::descriptor::export_schematics(std::path::Path::new(dir))
            .map_err(|e| format!("schematic export failed: {e}"))?;
        for p in written {
            eprintln!("wrote {}", p.display());
        }
    }
    let report = if demo_broken {
        coopmc::analyze::verify::run_broken_demo()
    } else {
        coopmc::analyze::verify::run_sections(only)?
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.has_errors() {
        Err("static verification failed".to_owned())
    } else {
        Ok(())
    }
}

fn usage() -> &'static str {
    "usage:\n  coopmc list\n  coopmc run <workload> [--pipeline SPEC] [--sampler seq|tree|pipe|alias] [--sweeps N] [--seed S] [--threads T] [--health] [--early-stop-rhat R] [--early-stop-ess E] [--journal-out F] [--trace-out F] [--metrics-out F] [--profile] [--flame-out F] [--profile-out F]\n  coopmc hw [--labels N]\n  coopmc verify [--json] [--demo-broken] [--only SECTION] [--export-schematic DIR]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("run") => parse_run_args(&args[1..]).and_then(cmd_run),
        Some("hw") => {
            let labels = args
                .iter()
                .position(|a| a == "--labels")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            cmd_hw(labels);
            Ok(())
        }
        Some("verify") => cmd_verify(
            args.iter().any(|a| a == "--demo-broken"),
            args.iter().any(|a| a == "--json"),
            args.iter()
                .position(|a| a == "--only")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str),
            args.iter()
                .position(|a| a == "--export-schematic")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str),
        ),
        _ => Err(usage().to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_specs_parse() {
        assert_eq!(
            parse_pipeline("float32").unwrap(),
            PipelineConfig::float32()
        );
        assert_eq!(parse_pipeline("fixed:8").unwrap(), PipelineConfig::fixed(8));
        assert_eq!(
            parse_pipeline("fixed+dn:4").unwrap(),
            PipelineConfig::fixed_dynorm(4)
        );
        assert_eq!(
            parse_pipeline("coopmc:64x8").unwrap(),
            PipelineConfig::coopmc(64, 8)
        );
        assert!(parse_pipeline("magic").is_err());
        assert!(parse_pipeline("coopmc:64").is_err());
        assert!(parse_pipeline("fixed:x").is_err());
    }

    #[test]
    fn run_args_parse_with_defaults_and_flags() {
        let args: Vec<String> = [
            "BN-ASIA",
            "--sweeps",
            "100",
            "--seed",
            "7",
            "--sampler",
            "seq",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = parse_run_args(&args).unwrap();
        assert_eq!(parsed.workload, "BN-ASIA");
        assert_eq!(parsed.sweeps, 100);
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.sampler, "seq");
        assert_eq!(parsed.threads, 1);
    }

    #[test]
    fn health_flags_parse_and_imply_monitoring() {
        let to_vec = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        let plain = parse_run_args(&to_vec(&["w"])).unwrap();
        assert!(!plain.health_enabled());

        let health = parse_run_args(&to_vec(&["w", "--health"])).unwrap();
        assert!(health.health && health.health_enabled());
        assert_eq!(health.early_stop_rhat, None);

        let rhat = parse_run_args(&to_vec(&["w", "--early-stop-rhat", "1.05"])).unwrap();
        assert!(rhat.health_enabled(), "early-stop implies health");
        assert_eq!(rhat.early_stop_rhat, Some(1.05));

        let ess = parse_run_args(&to_vec(&["w", "--early-stop-ess", "250"])).unwrap();
        assert!(ess.health_enabled());
        assert_eq!(ess.early_stop_ess, Some(250.0));
    }

    #[test]
    fn health_flags_reject_bad_thresholds() {
        let to_vec = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(parse_run_args(&to_vec(&["w", "--early-stop-rhat", "0.9"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--early-stop-rhat", "nan"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--early-stop-ess", "0"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--early-stop-ess", "-5"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--early-stop-ess"])).is_err());
    }

    #[test]
    fn profile_flags_parse_and_imply_profiling() {
        let to_vec = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        let plain = parse_run_args(&to_vec(&["w"])).unwrap();
        assert!(!plain.profile_enabled());

        let prof = parse_run_args(&to_vec(&["w", "--profile"])).unwrap();
        assert!(prof.profile && prof.profile_enabled());
        assert_eq!(prof.flame_out, None);

        let flame = parse_run_args(&to_vec(&["w", "--flame-out", "f.txt"])).unwrap();
        assert!(flame.profile_enabled(), "--flame-out implies profiling");
        assert_eq!(flame.flame_out.as_deref(), Some("f.txt"));

        let out = parse_run_args(&to_vec(&["w", "--profile-out", "p.jsonl"])).unwrap();
        assert!(out.profile_enabled(), "--profile-out implies profiling");
        assert_eq!(out.profile_out.as_deref(), Some("p.jsonl"));

        assert!(parse_run_args(&to_vec(&["w", "--flame-out"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--profile-out"])).is_err());
    }

    #[test]
    fn run_args_reject_bad_input() {
        let to_vec = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(parse_run_args(&to_vec(&[])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--sampler", "magic"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--threads", "0"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--sweeps"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--whatever", "1"])).is_err());
    }

    #[test]
    fn workload_lookup_is_fuzzy() {
        assert_eq!(find_workload("bn-asia").unwrap().name, "BN-ASIA");
        assert_eq!(find_workload("stereo").unwrap().name, "MRF-Stereo Matching");
        assert!(find_workload("nonexistent-model").is_none());
    }
}
