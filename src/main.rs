//! `coopmc` — command-line front end for the CoopMC reproduction.
//!
//! ```text
//! coopmc list
//! coopmc run <workload> [--pipeline SPEC] [--sampler KIND] [--sweeps N]
//!                       [--seed S] [--threads T]
//!                       [--journal-out F] [--trace-out F] [--metrics-out F]
//! coopmc hw [--labels N]
//! coopmc verify [--json] [--demo-broken]
//! ```
//!
//! Pipeline SPECs: `float32`, `fixed:<bits>`, `fixed+dn:<bits>`,
//! `coopmc:<size>x<bits>`. Sampler KINDs: `seq`, `tree`, `pipe`, `alias`.

use std::process::ExitCode;

use coopmc::core::engine::GibbsEngine;
use coopmc::core::parallel::ChromaticEngine;
use coopmc::core::pipeline::{CoopMcPipeline, PipelineConfig};
use coopmc::hw::accel::case_study_table;
use coopmc::hw::area::{sampler_area, SamplerKind};
use coopmc::hw::roofline::roofline;
use coopmc::models::workloads::{all_workloads, BuiltWorkload, WorkloadSpec};
use coopmc::models::GibbsModel;
use coopmc::obs::{Recorder, TraceRecorder};
use coopmc::rng::SplitMix64;
use coopmc::sampler::{AliasSampler, PipeTreeSampler, Sampler, SequentialSampler, TreeSampler};

/// Parsed `run` subcommand options.
#[derive(Debug, Clone, PartialEq)]
struct RunArgs {
    workload: String,
    pipeline: PipelineConfig,
    sampler: String,
    sweeps: u64,
    seed: u64,
    threads: usize,
    journal_out: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            workload: String::new(),
            pipeline: PipelineConfig::coopmc(64, 8),
            sampler: "tree".to_owned(),
            sweeps: 20,
            seed: 2022,
            threads: 1,
            journal_out: None,
            trace_out: None,
            metrics_out: None,
        }
    }
}

/// Parse a pipeline spec string.
fn parse_pipeline(spec: &str) -> Result<PipelineConfig, String> {
    if spec == "float32" {
        return Ok(PipelineConfig::float32());
    }
    if let Some(bits) = spec.strip_prefix("fixed+dn:") {
        let b: u32 = bits.parse().map_err(|_| format!("bad bits in '{spec}'"))?;
        return Ok(PipelineConfig::fixed_dynorm(b));
    }
    if let Some(bits) = spec.strip_prefix("fixed:") {
        let b: u32 = bits.parse().map_err(|_| format!("bad bits in '{spec}'"))?;
        return Ok(PipelineConfig::fixed(b));
    }
    if let Some(rest) = spec.strip_prefix("coopmc:") {
        let (size, bits) = rest
            .split_once('x')
            .ok_or_else(|| format!("expected coopmc:<size>x<bits>, got '{spec}'"))?;
        let s: usize = size.parse().map_err(|_| format!("bad size in '{spec}'"))?;
        let b: u32 = bits.parse().map_err(|_| format!("bad bits in '{spec}'"))?;
        return Ok(PipelineConfig::coopmc(s, b));
    }
    Err(format!(
        "unknown pipeline '{spec}' (try float32, fixed:8, fixed+dn:8, coopmc:64x8)"
    ))
}

/// Parse the argument list of `run`.
fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    out.workload = it
        .next()
        .ok_or("missing workload name (see `coopmc list`)")?
        .clone();
    while let Some(flag) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--pipeline" => out.pipeline = parse_pipeline(&value(&mut it)?)?,
            "--sampler" => {
                let v = value(&mut it)?;
                if !["seq", "tree", "pipe", "alias"].contains(&v.as_str()) {
                    return Err(format!("unknown sampler '{v}'"));
                }
                out.sampler = v;
            }
            "--sweeps" => {
                out.sweeps = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --sweeps value".to_owned())?
            }
            "--seed" => {
                out.seed = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --seed value".to_owned())?
            }
            "--threads" => {
                out.threads = value(&mut it)?
                    .parse()
                    .map_err(|_| "bad --threads value".to_owned())?;
                if out.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--journal-out" => out.journal_out = Some(value(&mut it)?),
            "--trace-out" => out.trace_out = Some(value(&mut it)?),
            "--metrics-out" => out.metrics_out = Some(value(&mut it)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn find_workload(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| {
        w.name.eq_ignore_ascii_case(name) || w.name.to_lowercase().contains(&name.to_lowercase())
    })
}

fn build_sampler(kind: &str) -> Box<dyn Sampler> {
    match kind {
        "seq" => Box::new(SequentialSampler::new()),
        "pipe" => Box::new(PipeTreeSampler::new()),
        "alias" => Box::new(AliasSampler::new()),
        _ => Box::new(TreeSampler::new()),
    }
}

fn cmd_list() {
    println!(
        "{:<30} {:>12} {:>8}  (paper scale)",
        "workload", "#variables", "#labels"
    );
    for w in all_workloads() {
        println!(
            "{:<30} {:>12} {:>8}",
            w.name, w.paper_variables, w.paper_labels
        );
    }
}

/// Write `contents` to `path`, mapping IO errors to a CLI-friendly string.
fn write_output(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_run(args: RunArgs) -> Result<(), String> {
    let spec = find_workload(&args.workload)
        .ok_or_else(|| format!("no workload matches '{}'", args.workload))?;
    println!(
        "running {} | pipeline {:?} | sampler {} | {} sweeps | seed {} | {} thread(s)",
        spec.name, args.pipeline, args.sampler, args.sweeps, args.seed, args.threads
    );
    let tracing =
        args.journal_out.is_some() || args.trace_out.is_some() || args.metrics_out.is_some();
    let recorder = TraceRecorder::new();
    let built = spec.build(args.seed);
    match built {
        BuiltWorkload::Mrf(mut app) => {
            let e0 = app.mrf.energy();
            if args.threads > 1 {
                let (size, bits) = match args.pipeline {
                    PipelineConfig::CoopMc { size_lut, bit_lut } => (size_lut, bit_lut),
                    _ => {
                        return Err(
                            "--threads > 1 currently supports only coopmc pipelines".to_owned()
                        )
                    }
                };
                let pipeline = CoopMcPipeline::new(size, bits);
                if tracing {
                    ChromaticEngine::with_recorder(pipeline, args.threads, args.seed, &recorder)
                        .run_observed(&mut app.mrf, args.sweeps, |it, m| {
                            recorder.observe_stat(0, it, m.energy());
                        });
                } else {
                    ChromaticEngine::new(pipeline, args.threads, args.seed)
                        .run(&mut app.mrf, args.sweeps);
                }
            } else if tracing {
                let mut engine = GibbsEngine::with_recorder(
                    args.pipeline.build(),
                    TreeSampler::new(),
                    SplitMix64::new(args.seed),
                    &recorder,
                );
                let mut stats = coopmc::core::engine::RunStats::default();
                for _ in 0..args.sweeps {
                    engine.sweep(&mut app.mrf, &mut stats);
                    recorder.observe_stat(0, engine.journal_iteration(), app.mrf.energy());
                }
            } else {
                let mut engine = GibbsEngine::new(
                    args.pipeline.build(),
                    TreeSampler::new(),
                    SplitMix64::new(args.seed),
                );
                engine.run(&mut app.mrf, args.sweeps);
            }
            println!("energy: {e0:.1} -> {:.1}", app.mrf.energy());
        }
        BuiltWorkload::Bn(mut net) => {
            let mut counter = coopmc::models::bn::MarginalCounter::new(&net);
            let mut stats = coopmc::core::engine::RunStats::default();
            if tracing {
                let mut engine = GibbsEngine::with_recorder(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                    &recorder,
                );
                for _ in 0..args.sweeps {
                    engine.sweep(&mut net, &mut stats);
                    counter.record(&net);
                    recorder.observe_stat(0, engine.journal_iteration(), net.joint_prob().ln());
                }
            } else {
                let mut engine = GibbsEngine::new(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                );
                for _ in 0..args.sweeps {
                    engine.sweep(&mut net, &mut stats);
                    counter.record(&net);
                }
            }
            println!("{:<14} {:>10}", "node", "P(label 0)");
            for v in 0..net.num_variables() {
                println!(
                    "{:<14} {:>10.4}",
                    net.nodes()[v].name,
                    counter.marginal(v)[0]
                );
            }
        }
        BuiltWorkload::Lda(mut lda) => {
            let ll0 = lda.log_likelihood();
            if tracing {
                let mut engine = GibbsEngine::with_recorder(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                    &recorder,
                );
                let mut stats = coopmc::core::engine::RunStats::default();
                for _ in 0..args.sweeps {
                    engine.sweep(&mut lda, &mut stats);
                    recorder.observe_stat(0, engine.journal_iteration(), lda.log_likelihood());
                }
            } else {
                let mut engine = GibbsEngine::new(
                    args.pipeline.build(),
                    build_sampler(&args.sampler),
                    SplitMix64::new(args.seed),
                );
                engine.run(&mut lda, args.sweeps);
            }
            println!("log-likelihood: {ll0:.0} -> {:.0}", lda.log_likelihood());
        }
    }
    if let Some(path) = &args.journal_out {
        write_output(path, &recorder.journal_jsonl())?;
    }
    if let Some(path) = &args.trace_out {
        write_output(path, &recorder.chrome_trace_json())?;
    }
    if let Some(path) = &args.metrics_out {
        write_output(path, &coopmc::obs::render())?;
    }
    Ok(())
}

fn cmd_hw(labels: usize) {
    println!("end-to-end case study at {labels} labels (Table IV model):");
    println!(
        "{:<12} {:>12} {:>8} {:>8} {:>9}",
        "version", "area um2", "area%", "power%", "speedup"
    );
    for (report, area, power, speedup) in case_study_table() {
        println!(
            "{:<12} {:>12.0} {:>7.0}% {:>7.0}% {:>8.2}x",
            report.config.name,
            report.area.total(),
            100.0 * area,
            100.0 * power,
            speedup
        );
        let r = roofline(report.cycles_per_variable);
        assert!(r.compute_bound);
    }
    println!("\nsampler areas at {labels} labels:");
    for kind in [
        SamplerKind::Sequential,
        SamplerKind::Tree,
        SamplerKind::PipeTree,
    ] {
        println!(
            "  {:<11} {:>10.0} um2",
            kind.name(),
            sampler_area(kind, labels, 32).total()
        );
    }
}

/// Run the static verifier (same sweep as the `coopmc-verify` binary) and
/// report success as an exit-code-style `Result`.
fn cmd_verify(demo_broken: bool, json: bool) -> Result<(), String> {
    let report = if demo_broken {
        coopmc::analyze::verify::run_broken_demo()
    } else {
        coopmc::analyze::verify::run_all()
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.has_errors() {
        Err("static verification failed".to_owned())
    } else {
        Ok(())
    }
}

fn usage() -> &'static str {
    "usage:\n  coopmc list\n  coopmc run <workload> [--pipeline SPEC] [--sampler seq|tree|pipe|alias] [--sweeps N] [--seed S] [--threads T] [--journal-out F] [--trace-out F] [--metrics-out F]\n  coopmc hw [--labels N]\n  coopmc verify [--json] [--demo-broken]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("run") => parse_run_args(&args[1..]).and_then(cmd_run),
        Some("hw") => {
            let labels = args
                .iter()
                .position(|a| a == "--labels")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            cmd_hw(labels);
            Ok(())
        }
        Some("verify") => cmd_verify(
            args.iter().any(|a| a == "--demo-broken"),
            args.iter().any(|a| a == "--json"),
        ),
        _ => Err(usage().to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_specs_parse() {
        assert_eq!(
            parse_pipeline("float32").unwrap(),
            PipelineConfig::float32()
        );
        assert_eq!(parse_pipeline("fixed:8").unwrap(), PipelineConfig::fixed(8));
        assert_eq!(
            parse_pipeline("fixed+dn:4").unwrap(),
            PipelineConfig::fixed_dynorm(4)
        );
        assert_eq!(
            parse_pipeline("coopmc:64x8").unwrap(),
            PipelineConfig::coopmc(64, 8)
        );
        assert!(parse_pipeline("magic").is_err());
        assert!(parse_pipeline("coopmc:64").is_err());
        assert!(parse_pipeline("fixed:x").is_err());
    }

    #[test]
    fn run_args_parse_with_defaults_and_flags() {
        let args: Vec<String> = [
            "BN-ASIA",
            "--sweeps",
            "100",
            "--seed",
            "7",
            "--sampler",
            "seq",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = parse_run_args(&args).unwrap();
        assert_eq!(parsed.workload, "BN-ASIA");
        assert_eq!(parsed.sweeps, 100);
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.sampler, "seq");
        assert_eq!(parsed.threads, 1);
    }

    #[test]
    fn run_args_reject_bad_input() {
        let to_vec = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(parse_run_args(&to_vec(&[])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--sampler", "magic"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--threads", "0"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--sweeps"])).is_err());
        assert!(parse_run_args(&to_vec(&["w", "--whatever", "1"])).is_err());
    }

    #[test]
    fn workload_lookup_is_fuzzy() {
        assert_eq!(find_workload("bn-asia").unwrap().name, "BN-ASIA");
        assert_eq!(find_workload("stereo").unwrap().name, "MRF-Stereo Matching");
        assert!(find_workload("nonexistent-model").is_none());
    }
}
