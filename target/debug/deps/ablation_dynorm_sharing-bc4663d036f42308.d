/root/repo/target/debug/deps/ablation_dynorm_sharing-bc4663d036f42308.d: crates/bench/src/bin/ablation_dynorm_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dynorm_sharing-bc4663d036f42308.rmeta: crates/bench/src/bin/ablation_dynorm_sharing.rs Cargo.toml

crates/bench/src/bin/ablation_dynorm_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
