/root/repo/target/debug/deps/ablation_dynorm_sharing-cef48cc2783cc875.d: crates/bench/src/bin/ablation_dynorm_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dynorm_sharing-cef48cc2783cc875.rmeta: crates/bench/src/bin/ablation_dynorm_sharing.rs Cargo.toml

crates/bench/src/bin/ablation_dynorm_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
