/root/repo/target/debug/deps/ablation_dynorm_sharing-fc30781e3009a9c6.d: crates/bench/src/bin/ablation_dynorm_sharing.rs

/root/repo/target/debug/deps/ablation_dynorm_sharing-fc30781e3009a9c6: crates/bench/src/bin/ablation_dynorm_sharing.rs

crates/bench/src/bin/ablation_dynorm_sharing.rs:
