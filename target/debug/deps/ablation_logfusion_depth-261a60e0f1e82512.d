/root/repo/target/debug/deps/ablation_logfusion_depth-261a60e0f1e82512.d: crates/bench/src/bin/ablation_logfusion_depth.rs Cargo.toml

/root/repo/target/debug/deps/libablation_logfusion_depth-261a60e0f1e82512.rmeta: crates/bench/src/bin/ablation_logfusion_depth.rs Cargo.toml

crates/bench/src/bin/ablation_logfusion_depth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
