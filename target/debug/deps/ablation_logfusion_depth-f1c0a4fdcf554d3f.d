/root/repo/target/debug/deps/ablation_logfusion_depth-f1c0a4fdcf554d3f.d: crates/bench/src/bin/ablation_logfusion_depth.rs

/root/repo/target/debug/deps/ablation_logfusion_depth-f1c0a4fdcf554d3f: crates/bench/src/bin/ablation_logfusion_depth.rs

crates/bench/src/bin/ablation_logfusion_depth.rs:
