/root/repo/target/debug/deps/ablation_parallel_gibbs-427a63b2817a75a6.d: crates/bench/src/bin/ablation_parallel_gibbs.rs

/root/repo/target/debug/deps/ablation_parallel_gibbs-427a63b2817a75a6: crates/bench/src/bin/ablation_parallel_gibbs.rs

crates/bench/src/bin/ablation_parallel_gibbs.rs:
