/root/repo/target/debug/deps/ablation_parallel_gibbs-c857c0d1b52dba85.d: crates/bench/src/bin/ablation_parallel_gibbs.rs Cargo.toml

/root/repo/target/debug/deps/libablation_parallel_gibbs-c857c0d1b52dba85.rmeta: crates/bench/src/bin/ablation_parallel_gibbs.rs Cargo.toml

crates/bench/src/bin/ablation_parallel_gibbs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
