/root/repo/target/debug/deps/ablation_parallel_gibbs-eb58251ec74a00a0.d: crates/bench/src/bin/ablation_parallel_gibbs.rs Cargo.toml

/root/repo/target/debug/deps/libablation_parallel_gibbs-eb58251ec74a00a0.rmeta: crates/bench/src/bin/ablation_parallel_gibbs.rs Cargo.toml

crates/bench/src/bin/ablation_parallel_gibbs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
