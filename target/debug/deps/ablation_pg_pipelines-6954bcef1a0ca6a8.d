/root/repo/target/debug/deps/ablation_pg_pipelines-6954bcef1a0ca6a8.d: crates/bench/src/bin/ablation_pg_pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pg_pipelines-6954bcef1a0ca6a8.rmeta: crates/bench/src/bin/ablation_pg_pipelines.rs Cargo.toml

crates/bench/src/bin/ablation_pg_pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
