/root/repo/target/debug/deps/ablation_pg_pipelines-fc1f0255d72ac3d7.d: crates/bench/src/bin/ablation_pg_pipelines.rs

/root/repo/target/debug/deps/ablation_pg_pipelines-fc1f0255d72ac3d7: crates/bench/src/bin/ablation_pg_pipelines.rs

crates/bench/src/bin/ablation_pg_pipelines.rs:
