/root/repo/target/debug/deps/ablation_saturation-57ba00dbbd333dba.d: crates/bench/src/bin/ablation_saturation.rs

/root/repo/target/debug/deps/ablation_saturation-57ba00dbbd333dba: crates/bench/src/bin/ablation_saturation.rs

crates/bench/src/bin/ablation_saturation.rs:
