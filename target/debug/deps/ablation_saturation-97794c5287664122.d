/root/repo/target/debug/deps/ablation_saturation-97794c5287664122.d: crates/bench/src/bin/ablation_saturation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_saturation-97794c5287664122.rmeta: crates/bench/src/bin/ablation_saturation.rs Cargo.toml

crates/bench/src/bin/ablation_saturation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
