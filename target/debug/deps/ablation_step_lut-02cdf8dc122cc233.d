/root/repo/target/debug/deps/ablation_step_lut-02cdf8dc122cc233.d: crates/bench/src/bin/ablation_step_lut.rs Cargo.toml

/root/repo/target/debug/deps/libablation_step_lut-02cdf8dc122cc233.rmeta: crates/bench/src/bin/ablation_step_lut.rs Cargo.toml

crates/bench/src/bin/ablation_step_lut.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
