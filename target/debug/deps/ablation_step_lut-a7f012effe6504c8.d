/root/repo/target/debug/deps/ablation_step_lut-a7f012effe6504c8.d: crates/bench/src/bin/ablation_step_lut.rs

/root/repo/target/debug/deps/ablation_step_lut-a7f012effe6504c8: crates/bench/src/bin/ablation_step_lut.rs

crates/bench/src/bin/ablation_step_lut.rs:
