/root/repo/target/debug/deps/alloc_free-857a31fb54bb0532.d: crates/core/tests/alloc_free.rs

/root/repo/target/debug/deps/alloc_free-857a31fb54bb0532: crates/core/tests/alloc_free.rs

crates/core/tests/alloc_free.rs:
