/root/repo/target/debug/deps/consistency-2a7ca2b67aa2eaf0.d: crates/hw/tests/consistency.rs

/root/repo/target/debug/deps/consistency-2a7ca2b67aa2eaf0: crates/hw/tests/consistency.rs

crates/hw/tests/consistency.rs:
