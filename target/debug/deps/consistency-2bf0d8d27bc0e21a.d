/root/repo/target/debug/deps/consistency-2bf0d8d27bc0e21a.d: crates/hw/tests/consistency.rs Cargo.toml

/root/repo/target/debug/deps/libconsistency-2bf0d8d27bc0e21a.rmeta: crates/hw/tests/consistency.rs Cargo.toml

crates/hw/tests/consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
