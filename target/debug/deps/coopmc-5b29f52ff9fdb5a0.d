/root/repo/target/debug/deps/coopmc-5b29f52ff9fdb5a0.d: src/main.rs

/root/repo/target/debug/deps/coopmc-5b29f52ff9fdb5a0: src/main.rs

src/main.rs:
