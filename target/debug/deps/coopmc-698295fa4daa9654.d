/root/repo/target/debug/deps/coopmc-698295fa4daa9654.d: src/main.rs

/root/repo/target/debug/deps/coopmc-698295fa4daa9654: src/main.rs

src/main.rs:
