/root/repo/target/debug/deps/coopmc-8aa90abb3cd0690a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc-8aa90abb3cd0690a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
