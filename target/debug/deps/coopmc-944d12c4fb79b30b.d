/root/repo/target/debug/deps/coopmc-944d12c4fb79b30b.d: src/lib.rs

/root/repo/target/debug/deps/libcoopmc-944d12c4fb79b30b.rlib: src/lib.rs

/root/repo/target/debug/deps/libcoopmc-944d12c4fb79b30b.rmeta: src/lib.rs

src/lib.rs:
