/root/repo/target/debug/deps/coopmc-aafefb37414afe90.d: src/lib.rs

/root/repo/target/debug/deps/coopmc-aafefb37414afe90: src/lib.rs

src/lib.rs:
