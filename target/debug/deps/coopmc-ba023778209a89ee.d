/root/repo/target/debug/deps/coopmc-ba023778209a89ee.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc-ba023778209a89ee.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
