/root/repo/target/debug/deps/coopmc-bc8957a7fd2cef6e.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc-bc8957a7fd2cef6e.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
