/root/repo/target/debug/deps/coopmc-cda3522d66860ce3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc-cda3522d66860ce3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
