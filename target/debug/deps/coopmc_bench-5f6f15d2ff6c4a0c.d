/root/repo/target/debug/deps/coopmc_bench-5f6f15d2ff6c4a0c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/coopmc_bench-5f6f15d2ff6c4a0c: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
