/root/repo/target/debug/deps/coopmc_bench-702c4f50e15f70ba.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcoopmc_bench-702c4f50e15f70ba.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libcoopmc_bench-702c4f50e15f70ba.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
