/root/repo/target/debug/deps/coopmc_bench-c9f5f348d5344af4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_bench-c9f5f348d5344af4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
