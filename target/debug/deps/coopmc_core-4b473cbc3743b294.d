/root/repo/target/debug/deps/coopmc_core-4b473cbc3743b294.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/debug/deps/libcoopmc_core-4b473cbc3743b294.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/debug/deps/libcoopmc_core-4b473cbc3743b294.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/experiments.rs:
crates/core/src/metropolis.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
