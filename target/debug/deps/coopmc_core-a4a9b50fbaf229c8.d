/root/repo/target/debug/deps/coopmc_core-a4a9b50fbaf229c8.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_core-a4a9b50fbaf229c8.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/experiments.rs:
crates/core/src/metropolis.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
