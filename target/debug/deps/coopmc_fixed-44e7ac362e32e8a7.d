/root/repo/target/debug/deps/coopmc_fixed-44e7ac362e32e8a7.d: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_fixed-44e7ac362e32e8a7.rmeta: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs Cargo.toml

crates/fixed/src/lib.rs:
crates/fixed/src/format.rs:
crates/fixed/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
