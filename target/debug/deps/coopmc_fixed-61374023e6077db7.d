/root/repo/target/debug/deps/coopmc_fixed-61374023e6077db7.d: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

/root/repo/target/debug/deps/coopmc_fixed-61374023e6077db7: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

crates/fixed/src/lib.rs:
crates/fixed/src/format.rs:
crates/fixed/src/value.rs:
