/root/repo/target/debug/deps/coopmc_fixed-6551cbf55cc1f158.d: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

/root/repo/target/debug/deps/libcoopmc_fixed-6551cbf55cc1f158.rlib: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

/root/repo/target/debug/deps/libcoopmc_fixed-6551cbf55cc1f158.rmeta: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

crates/fixed/src/lib.rs:
crates/fixed/src/format.rs:
crates/fixed/src/value.rs:
