/root/repo/target/debug/deps/coopmc_hw-aab2e34c15e8e4e2.d: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_hw-aab2e34c15e8e4e2.rmeta: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/accel.rs:
crates/hw/src/area.rs:
crates/hw/src/cycles.rs:
crates/hw/src/mem.rs:
crates/hw/src/pgpipe.rs:
crates/hw/src/power.rs:
crates/hw/src/roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
