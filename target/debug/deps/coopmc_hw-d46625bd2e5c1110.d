/root/repo/target/debug/deps/coopmc_hw-d46625bd2e5c1110.d: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

/root/repo/target/debug/deps/coopmc_hw-d46625bd2e5c1110: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

crates/hw/src/lib.rs:
crates/hw/src/accel.rs:
crates/hw/src/area.rs:
crates/hw/src/cycles.rs:
crates/hw/src/mem.rs:
crates/hw/src/pgpipe.rs:
crates/hw/src/power.rs:
crates/hw/src/roofline.rs:
