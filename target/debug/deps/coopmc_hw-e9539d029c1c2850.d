/root/repo/target/debug/deps/coopmc_hw-e9539d029c1c2850.d: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

/root/repo/target/debug/deps/libcoopmc_hw-e9539d029c1c2850.rlib: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

/root/repo/target/debug/deps/libcoopmc_hw-e9539d029c1c2850.rmeta: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

crates/hw/src/lib.rs:
crates/hw/src/accel.rs:
crates/hw/src/area.rs:
crates/hw/src/cycles.rs:
crates/hw/src/mem.rs:
crates/hw/src/pgpipe.rs:
crates/hw/src/power.rs:
crates/hw/src/roofline.rs:
