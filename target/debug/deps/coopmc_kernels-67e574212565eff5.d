/root/repo/target/debug/deps/coopmc_kernels-67e574212565eff5.d: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

/root/repo/target/debug/deps/coopmc_kernels-67e574212565eff5: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cost.rs:
crates/kernels/src/dynorm.rs:
crates/kernels/src/error.rs:
crates/kernels/src/exp.rs:
crates/kernels/src/faults.rs:
crates/kernels/src/fusion.rs:
crates/kernels/src/log.rs:
