/root/repo/target/debug/deps/coopmc_kernels-a6e1ce2c35933208.d: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_kernels-a6e1ce2c35933208.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/cost.rs:
crates/kernels/src/dynorm.rs:
crates/kernels/src/error.rs:
crates/kernels/src/exp.rs:
crates/kernels/src/faults.rs:
crates/kernels/src/fusion.rs:
crates/kernels/src/log.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
