/root/repo/target/debug/deps/coopmc_kernels-ac74156fdd404529.d: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

/root/repo/target/debug/deps/libcoopmc_kernels-ac74156fdd404529.rlib: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

/root/repo/target/debug/deps/libcoopmc_kernels-ac74156fdd404529.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cost.rs:
crates/kernels/src/dynorm.rs:
crates/kernels/src/error.rs:
crates/kernels/src/exp.rs:
crates/kernels/src/faults.rs:
crates/kernels/src/fusion.rs:
crates/kernels/src/log.rs:
