/root/repo/target/debug/deps/coopmc_models-a4bc2762b0b56d15.d: crates/models/src/lib.rs crates/models/src/bn/mod.rs crates/models/src/bn/exact.rs crates/models/src/bn/networks.rs crates/models/src/bn/sampling.rs crates/models/src/coloring.rs crates/models/src/diagnostics.rs crates/models/src/lda/mod.rs crates/models/src/lda/corpus.rs crates/models/src/lda/inference.rs crates/models/src/lda/sparse.rs crates/models/src/metrics.rs crates/models/src/mrf/mod.rs crates/models/src/mrf/apps.rs crates/models/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_models-a4bc2762b0b56d15.rmeta: crates/models/src/lib.rs crates/models/src/bn/mod.rs crates/models/src/bn/exact.rs crates/models/src/bn/networks.rs crates/models/src/bn/sampling.rs crates/models/src/coloring.rs crates/models/src/diagnostics.rs crates/models/src/lda/mod.rs crates/models/src/lda/corpus.rs crates/models/src/lda/inference.rs crates/models/src/lda/sparse.rs crates/models/src/metrics.rs crates/models/src/mrf/mod.rs crates/models/src/mrf/apps.rs crates/models/src/workloads.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/bn/mod.rs:
crates/models/src/bn/exact.rs:
crates/models/src/bn/networks.rs:
crates/models/src/bn/sampling.rs:
crates/models/src/coloring.rs:
crates/models/src/diagnostics.rs:
crates/models/src/lda/mod.rs:
crates/models/src/lda/corpus.rs:
crates/models/src/lda/inference.rs:
crates/models/src/lda/sparse.rs:
crates/models/src/metrics.rs:
crates/models/src/mrf/mod.rs:
crates/models/src/mrf/apps.rs:
crates/models/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
