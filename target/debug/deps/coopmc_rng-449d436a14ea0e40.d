/root/repo/target/debug/deps/coopmc_rng-449d436a14ea0e40.d: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

/root/repo/target/debug/deps/libcoopmc_rng-449d436a14ea0e40.rlib: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

/root/repo/target/debug/deps/libcoopmc_rng-449d436a14ea0e40.rmeta: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

crates/rng/src/lib.rs:
crates/rng/src/counting.rs:
crates/rng/src/lfsr.rs:
crates/rng/src/philox.rs:
crates/rng/src/splitmix.rs:
crates/rng/src/xorshift.rs:
