/root/repo/target/debug/deps/coopmc_rng-9718b95dd4484e6b.d: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_rng-9718b95dd4484e6b.rmeta: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs Cargo.toml

crates/rng/src/lib.rs:
crates/rng/src/counting.rs:
crates/rng/src/lfsr.rs:
crates/rng/src/philox.rs:
crates/rng/src/splitmix.rs:
crates/rng/src/xorshift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
