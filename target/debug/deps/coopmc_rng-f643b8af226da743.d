/root/repo/target/debug/deps/coopmc_rng-f643b8af226da743.d: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

/root/repo/target/debug/deps/coopmc_rng-f643b8af226da743: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

crates/rng/src/lib.rs:
crates/rng/src/counting.rs:
crates/rng/src/lfsr.rs:
crates/rng/src/philox.rs:
crates/rng/src/splitmix.rs:
crates/rng/src/xorshift.rs:
