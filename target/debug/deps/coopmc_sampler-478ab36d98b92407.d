/root/repo/target/debug/deps/coopmc_sampler-478ab36d98b92407.d: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_sampler-478ab36d98b92407.rmeta: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs Cargo.toml

crates/sampler/src/lib.rs:
crates/sampler/src/alias.rs:
crates/sampler/src/pipe.rs:
crates/sampler/src/sequential.rs:
crates/sampler/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
