/root/repo/target/debug/deps/coopmc_sampler-4ecac432fdfba809.d: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

/root/repo/target/debug/deps/coopmc_sampler-4ecac432fdfba809: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

crates/sampler/src/lib.rs:
crates/sampler/src/alias.rs:
crates/sampler/src/pipe.rs:
crates/sampler/src/sequential.rs:
crates/sampler/src/tree.rs:
