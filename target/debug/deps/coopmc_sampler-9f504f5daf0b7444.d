/root/repo/target/debug/deps/coopmc_sampler-9f504f5daf0b7444.d: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

/root/repo/target/debug/deps/libcoopmc_sampler-9f504f5daf0b7444.rlib: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

/root/repo/target/debug/deps/libcoopmc_sampler-9f504f5daf0b7444.rmeta: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

crates/sampler/src/lib.rs:
crates/sampler/src/alias.rs:
crates/sampler/src/pipe.rs:
crates/sampler/src/sequential.rs:
crates/sampler/src/tree.rs:
