/root/repo/target/debug/deps/coopmc_sampler-c2e8bb4413fe0fed.d: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_sampler-c2e8bb4413fe0fed.rmeta: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs Cargo.toml

crates/sampler/src/lib.rs:
crates/sampler/src/alias.rs:
crates/sampler/src/pipe.rs:
crates/sampler/src/sequential.rs:
crates/sampler/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
