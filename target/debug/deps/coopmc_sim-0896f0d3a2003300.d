/root/repo/target/debug/deps/coopmc_sim-0896f0d3a2003300.d: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_sim-0896f0d3a2003300.rmeta: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/circuits.rs:
crates/sim/src/netlist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
