/root/repo/target/debug/deps/coopmc_sim-199cfd8691f8d2de.d: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

/root/repo/target/debug/deps/coopmc_sim-199cfd8691f8d2de: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

crates/sim/src/lib.rs:
crates/sim/src/circuits.rs:
crates/sim/src/netlist.rs:
