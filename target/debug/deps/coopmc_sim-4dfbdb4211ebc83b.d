/root/repo/target/debug/deps/coopmc_sim-4dfbdb4211ebc83b.d: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_sim-4dfbdb4211ebc83b.rmeta: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/circuits.rs:
crates/sim/src/netlist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
