/root/repo/target/debug/deps/coopmc_sim-5c6c0c9f288bc4a4.d: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

/root/repo/target/debug/deps/libcoopmc_sim-5c6c0c9f288bc4a4.rlib: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

/root/repo/target/debug/deps/libcoopmc_sim-5c6c0c9f288bc4a4.rmeta: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

crates/sim/src/lib.rs:
crates/sim/src/circuits.rs:
crates/sim/src/netlist.rs:
