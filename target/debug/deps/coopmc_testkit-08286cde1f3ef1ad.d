/root/repo/target/debug/deps/coopmc_testkit-08286cde1f3ef1ad.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_testkit-08286cde1f3ef1ad.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
