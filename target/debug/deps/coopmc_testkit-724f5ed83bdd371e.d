/root/repo/target/debug/deps/coopmc_testkit-724f5ed83bdd371e.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoopmc_testkit-724f5ed83bdd371e.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
