/root/repo/target/debug/deps/coopmc_testkit-9eca573c98db4cdf.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libcoopmc_testkit-9eca573c98db4cdf.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libcoopmc_testkit-9eca573c98db4cdf.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
