/root/repo/target/debug/deps/coopmc_testkit-a930a1e317e39bad.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/coopmc_testkit-a930a1e317e39bad: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
