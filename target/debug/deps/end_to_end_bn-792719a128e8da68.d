/root/repo/target/debug/deps/end_to_end_bn-792719a128e8da68.d: tests/end_to_end_bn.rs

/root/repo/target/debug/deps/end_to_end_bn-792719a128e8da68: tests/end_to_end_bn.rs

tests/end_to_end_bn.rs:
