/root/repo/target/debug/deps/end_to_end_lda-27a69665c12b78be.d: tests/end_to_end_lda.rs

/root/repo/target/debug/deps/end_to_end_lda-27a69665c12b78be: tests/end_to_end_lda.rs

tests/end_to_end_lda.rs:
