/root/repo/target/debug/deps/end_to_end_lda-4ff246023554b623.d: tests/end_to_end_lda.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_lda-4ff246023554b623.rmeta: tests/end_to_end_lda.rs Cargo.toml

tests/end_to_end_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
