/root/repo/target/debug/deps/end_to_end_mrf-097bed87140b7786.d: tests/end_to_end_mrf.rs

/root/repo/target/debug/deps/end_to_end_mrf-097bed87140b7786: tests/end_to_end_mrf.rs

tests/end_to_end_mrf.rs:
