/root/repo/target/debug/deps/end_to_end_mrf-43514a7e9609776c.d: tests/end_to_end_mrf.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_mrf-43514a7e9609776c.rmeta: tests/end_to_end_mrf.rs Cargo.toml

tests/end_to_end_mrf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
