/root/repo/target/debug/deps/equivalence-3272c6b2ffbd659d.d: crates/sim/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-3272c6b2ffbd659d: crates/sim/tests/equivalence.rs

crates/sim/tests/equivalence.rs:
