/root/repo/target/debug/deps/equivalence-d5320d8ca27d9668.d: crates/sim/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-d5320d8ca27d9668.rmeta: crates/sim/tests/equivalence.rs Cargo.toml

crates/sim/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
