/root/repo/target/debug/deps/extension_dse_pareto-72f5d29cc6277249.d: crates/bench/src/bin/extension_dse_pareto.rs Cargo.toml

/root/repo/target/debug/deps/libextension_dse_pareto-72f5d29cc6277249.rmeta: crates/bench/src/bin/extension_dse_pareto.rs Cargo.toml

crates/bench/src/bin/extension_dse_pareto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
