/root/repo/target/debug/deps/extension_dse_pareto-acb7cf64fe617381.d: crates/bench/src/bin/extension_dse_pareto.rs

/root/repo/target/debug/deps/extension_dse_pareto-acb7cf64fe617381: crates/bench/src/bin/extension_dse_pareto.rs

crates/bench/src/bin/extension_dse_pareto.rs:
