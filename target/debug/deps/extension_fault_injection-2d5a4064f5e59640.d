/root/repo/target/debug/deps/extension_fault_injection-2d5a4064f5e59640.d: crates/bench/src/bin/extension_fault_injection.rs

/root/repo/target/debug/deps/extension_fault_injection-2d5a4064f5e59640: crates/bench/src/bin/extension_fault_injection.rs

crates/bench/src/bin/extension_fault_injection.rs:
