/root/repo/target/debug/deps/extension_fault_injection-43ca780b046d8339.d: crates/bench/src/bin/extension_fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libextension_fault_injection-43ca780b046d8339.rmeta: crates/bench/src/bin/extension_fault_injection.rs Cargo.toml

crates/bench/src/bin/extension_fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
