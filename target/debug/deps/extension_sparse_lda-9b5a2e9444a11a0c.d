/root/repo/target/debug/deps/extension_sparse_lda-9b5a2e9444a11a0c.d: crates/bench/src/bin/extension_sparse_lda.rs Cargo.toml

/root/repo/target/debug/deps/libextension_sparse_lda-9b5a2e9444a11a0c.rmeta: crates/bench/src/bin/extension_sparse_lda.rs Cargo.toml

crates/bench/src/bin/extension_sparse_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
