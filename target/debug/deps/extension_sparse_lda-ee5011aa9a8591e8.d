/root/repo/target/debug/deps/extension_sparse_lda-ee5011aa9a8591e8.d: crates/bench/src/bin/extension_sparse_lda.rs

/root/repo/target/debug/deps/extension_sparse_lda-ee5011aa9a8591e8: crates/bench/src/bin/extension_sparse_lda.rs

crates/bench/src/bin/extension_sparse_lda.rs:
