/root/repo/target/debug/deps/extension_workload_speedups-4b3dcdbf4f1dc6a0.d: crates/bench/src/bin/extension_workload_speedups.rs Cargo.toml

/root/repo/target/debug/deps/libextension_workload_speedups-4b3dcdbf4f1dc6a0.rmeta: crates/bench/src/bin/extension_workload_speedups.rs Cargo.toml

crates/bench/src/bin/extension_workload_speedups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
