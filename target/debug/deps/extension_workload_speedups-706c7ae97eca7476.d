/root/repo/target/debug/deps/extension_workload_speedups-706c7ae97eca7476.d: crates/bench/src/bin/extension_workload_speedups.rs

/root/repo/target/debug/deps/extension_workload_speedups-706c7ae97eca7476: crates/bench/src/bin/extension_workload_speedups.rs

crates/bench/src/bin/extension_workload_speedups.rs:
