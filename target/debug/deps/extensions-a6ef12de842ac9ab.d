/root/repo/target/debug/deps/extensions-a6ef12de842ac9ab.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-a6ef12de842ac9ab.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
