/root/repo/target/debug/deps/extensions-e86f13322724e32b.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-e86f13322724e32b: tests/extensions.rs

tests/extensions.rs:
