/root/repo/target/debug/deps/fig10_dynorm_mrf-37486dc49486c1e6.d: crates/bench/src/bin/fig10_dynorm_mrf.rs

/root/repo/target/debug/deps/fig10_dynorm_mrf-37486dc49486c1e6: crates/bench/src/bin/fig10_dynorm_mrf.rs

crates/bench/src/bin/fig10_dynorm_mrf.rs:
