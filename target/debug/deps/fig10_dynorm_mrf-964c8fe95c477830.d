/root/repo/target/debug/deps/fig10_dynorm_mrf-964c8fe95c477830.d: crates/bench/src/bin/fig10_dynorm_mrf.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_dynorm_mrf-964c8fe95c477830.rmeta: crates/bench/src/bin/fig10_dynorm_mrf.rs Cargo.toml

crates/bench/src/bin/fig10_dynorm_mrf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
