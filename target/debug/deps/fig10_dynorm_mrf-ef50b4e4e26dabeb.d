/root/repo/target/debug/deps/fig10_dynorm_mrf-ef50b4e4e26dabeb.d: crates/bench/src/bin/fig10_dynorm_mrf.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_dynorm_mrf-ef50b4e4e26dabeb.rmeta: crates/bench/src/bin/fig10_dynorm_mrf.rs Cargo.toml

crates/bench/src/bin/fig10_dynorm_mrf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
