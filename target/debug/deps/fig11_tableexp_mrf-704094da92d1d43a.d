/root/repo/target/debug/deps/fig11_tableexp_mrf-704094da92d1d43a.d: crates/bench/src/bin/fig11_tableexp_mrf.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_tableexp_mrf-704094da92d1d43a.rmeta: crates/bench/src/bin/fig11_tableexp_mrf.rs Cargo.toml

crates/bench/src/bin/fig11_tableexp_mrf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
