/root/repo/target/debug/deps/fig11_tableexp_mrf-87fbb51c4e133f43.d: crates/bench/src/bin/fig11_tableexp_mrf.rs

/root/repo/target/debug/deps/fig11_tableexp_mrf-87fbb51c4e133f43: crates/bench/src/bin/fig11_tableexp_mrf.rs

crates/bench/src/bin/fig11_tableexp_mrf.rs:
