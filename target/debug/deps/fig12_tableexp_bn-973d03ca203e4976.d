/root/repo/target/debug/deps/fig12_tableexp_bn-973d03ca203e4976.d: crates/bench/src/bin/fig12_tableexp_bn.rs

/root/repo/target/debug/deps/fig12_tableexp_bn-973d03ca203e4976: crates/bench/src/bin/fig12_tableexp_bn.rs

crates/bench/src/bin/fig12_tableexp_bn.rs:
