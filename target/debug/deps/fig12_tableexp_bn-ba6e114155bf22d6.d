/root/repo/target/debug/deps/fig12_tableexp_bn-ba6e114155bf22d6.d: crates/bench/src/bin/fig12_tableexp_bn.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_tableexp_bn-ba6e114155bf22d6.rmeta: crates/bench/src/bin/fig12_tableexp_bn.rs Cargo.toml

crates/bench/src/bin/fig12_tableexp_bn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
