/root/repo/target/debug/deps/fig13_tableexp_lda-51a64f5f035e0d2e.d: crates/bench/src/bin/fig13_tableexp_lda.rs

/root/repo/target/debug/deps/fig13_tableexp_lda-51a64f5f035e0d2e: crates/bench/src/bin/fig13_tableexp_lda.rs

crates/bench/src/bin/fig13_tableexp_lda.rs:
