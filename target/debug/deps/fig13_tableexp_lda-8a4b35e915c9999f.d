/root/repo/target/debug/deps/fig13_tableexp_lda-8a4b35e915c9999f.d: crates/bench/src/bin/fig13_tableexp_lda.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_tableexp_lda-8a4b35e915c9999f.rmeta: crates/bench/src/bin/fig13_tableexp_lda.rs Cargo.toml

crates/bench/src/bin/fig13_tableexp_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
