/root/repo/target/debug/deps/fig14_sampler_area-baf33fc67d062f07.d: crates/bench/src/bin/fig14_sampler_area.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_sampler_area-baf33fc67d062f07.rmeta: crates/bench/src/bin/fig14_sampler_area.rs Cargo.toml

crates/bench/src/bin/fig14_sampler_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
