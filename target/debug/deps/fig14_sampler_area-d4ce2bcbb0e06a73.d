/root/repo/target/debug/deps/fig14_sampler_area-d4ce2bcbb0e06a73.d: crates/bench/src/bin/fig14_sampler_area.rs

/root/repo/target/debug/deps/fig14_sampler_area-d4ce2bcbb0e06a73: crates/bench/src/bin/fig14_sampler_area.rs

crates/bench/src/bin/fig14_sampler_area.rs:
