/root/repo/target/debug/deps/fig15_sampler_efficiency-441ae7d6a0686170.d: crates/bench/src/bin/fig15_sampler_efficiency.rs

/root/repo/target/debug/deps/fig15_sampler_efficiency-441ae7d6a0686170: crates/bench/src/bin/fig15_sampler_efficiency.rs

crates/bench/src/bin/fig15_sampler_efficiency.rs:
