/root/repo/target/debug/deps/fig15_sampler_efficiency-85476308d4929807.d: crates/bench/src/bin/fig15_sampler_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_sampler_efficiency-85476308d4929807.rmeta: crates/bench/src/bin/fig15_sampler_efficiency.rs Cargo.toml

crates/bench/src/bin/fig15_sampler_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
