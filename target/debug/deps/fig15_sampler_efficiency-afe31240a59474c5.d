/root/repo/target/debug/deps/fig15_sampler_efficiency-afe31240a59474c5.d: crates/bench/src/bin/fig15_sampler_efficiency.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_sampler_efficiency-afe31240a59474c5.rmeta: crates/bench/src/bin/fig15_sampler_efficiency.rs Cargo.toml

crates/bench/src/bin/fig15_sampler_efficiency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
