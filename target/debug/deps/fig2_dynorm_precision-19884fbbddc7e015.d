/root/repo/target/debug/deps/fig2_dynorm_precision-19884fbbddc7e015.d: crates/bench/src/bin/fig2_dynorm_precision.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_dynorm_precision-19884fbbddc7e015.rmeta: crates/bench/src/bin/fig2_dynorm_precision.rs Cargo.toml

crates/bench/src/bin/fig2_dynorm_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
