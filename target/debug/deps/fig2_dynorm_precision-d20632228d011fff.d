/root/repo/target/debug/deps/fig2_dynorm_precision-d20632228d011fff.d: crates/bench/src/bin/fig2_dynorm_precision.rs

/root/repo/target/debug/deps/fig2_dynorm_precision-d20632228d011fff: crates/bench/src/bin/fig2_dynorm_precision.rs

crates/bench/src/bin/fig2_dynorm_precision.rs:
