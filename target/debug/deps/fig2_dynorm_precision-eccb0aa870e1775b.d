/root/repo/target/debug/deps/fig2_dynorm_precision-eccb0aa870e1775b.d: crates/bench/src/bin/fig2_dynorm_precision.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_dynorm_precision-eccb0aa870e1775b.rmeta: crates/bench/src/bin/fig2_dynorm_precision.rs Cargo.toml

crates/bench/src/bin/fig2_dynorm_precision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
