/root/repo/target/debug/deps/fig4_exp_error-56721558521c77bb.d: crates/bench/src/bin/fig4_exp_error.rs

/root/repo/target/debug/deps/fig4_exp_error-56721558521c77bb: crates/bench/src/bin/fig4_exp_error.rs

crates/bench/src/bin/fig4_exp_error.rs:
