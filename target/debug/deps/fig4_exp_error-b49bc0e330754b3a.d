/root/repo/target/debug/deps/fig4_exp_error-b49bc0e330754b3a.d: crates/bench/src/bin/fig4_exp_error.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_exp_error-b49bc0e330754b3a.rmeta: crates/bench/src/bin/fig4_exp_error.rs Cargo.toml

crates/bench/src/bin/fig4_exp_error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
