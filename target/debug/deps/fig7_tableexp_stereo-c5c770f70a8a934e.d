/root/repo/target/debug/deps/fig7_tableexp_stereo-c5c770f70a8a934e.d: crates/bench/src/bin/fig7_tableexp_stereo.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_tableexp_stereo-c5c770f70a8a934e.rmeta: crates/bench/src/bin/fig7_tableexp_stereo.rs Cargo.toml

crates/bench/src/bin/fig7_tableexp_stereo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
