/root/repo/target/debug/deps/fig7_tableexp_stereo-e1582b7efd70df8f.d: crates/bench/src/bin/fig7_tableexp_stereo.rs

/root/repo/target/debug/deps/fig7_tableexp_stereo-e1582b7efd70df8f: crates/bench/src/bin/fig7_tableexp_stereo.rs

crates/bench/src/bin/fig7_tableexp_stereo.rs:
