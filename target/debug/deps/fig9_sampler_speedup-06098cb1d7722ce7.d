/root/repo/target/debug/deps/fig9_sampler_speedup-06098cb1d7722ce7.d: crates/bench/src/bin/fig9_sampler_speedup.rs

/root/repo/target/debug/deps/fig9_sampler_speedup-06098cb1d7722ce7: crates/bench/src/bin/fig9_sampler_speedup.rs

crates/bench/src/bin/fig9_sampler_speedup.rs:
