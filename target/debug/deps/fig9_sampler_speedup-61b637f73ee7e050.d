/root/repo/target/debug/deps/fig9_sampler_speedup-61b637f73ee7e050.d: crates/bench/src/bin/fig9_sampler_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_sampler_speedup-61b637f73ee7e050.rmeta: crates/bench/src/bin/fig9_sampler_speedup.rs Cargo.toml

crates/bench/src/bin/fig9_sampler_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
