/root/repo/target/debug/deps/hardware_claims-83c4f32da2449ba1.d: tests/hardware_claims.rs

/root/repo/target/debug/deps/hardware_claims-83c4f32da2449ba1: tests/hardware_claims.rs

tests/hardware_claims.rs:
