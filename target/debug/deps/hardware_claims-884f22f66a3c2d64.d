/root/repo/target/debug/deps/hardware_claims-884f22f66a3c2d64.d: tests/hardware_claims.rs Cargo.toml

/root/repo/target/debug/deps/libhardware_claims-884f22f66a3c2d64.rmeta: tests/hardware_claims.rs Cargo.toml

tests/hardware_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
