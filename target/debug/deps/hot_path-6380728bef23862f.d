/root/repo/target/debug/deps/hot_path-6380728bef23862f.d: crates/bench/benches/hot_path.rs Cargo.toml

/root/repo/target/debug/deps/libhot_path-6380728bef23862f.rmeta: crates/bench/benches/hot_path.rs Cargo.toml

crates/bench/benches/hot_path.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
