/root/repo/target/debug/deps/matrix-7894061491824f1e.d: crates/core/tests/matrix.rs Cargo.toml

/root/repo/target/debug/deps/libmatrix-7894061491824f1e.rmeta: crates/core/tests/matrix.rs Cargo.toml

crates/core/tests/matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
