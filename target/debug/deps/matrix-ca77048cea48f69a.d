/root/repo/target/debug/deps/matrix-ca77048cea48f69a.d: crates/core/tests/matrix.rs

/root/repo/target/debug/deps/matrix-ca77048cea48f69a: crates/core/tests/matrix.rs

crates/core/tests/matrix.rs:
