/root/repo/target/debug/deps/pooled_determinism-22cf64e66051e1c9.d: crates/core/tests/pooled_determinism.rs

/root/repo/target/debug/deps/pooled_determinism-22cf64e66051e1c9: crates/core/tests/pooled_determinism.rs

crates/core/tests/pooled_determinism.rs:
