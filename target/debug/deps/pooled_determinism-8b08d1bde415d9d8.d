/root/repo/target/debug/deps/pooled_determinism-8b08d1bde415d9d8.d: crates/core/tests/pooled_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpooled_determinism-8b08d1bde415d9d8.rmeta: crates/core/tests/pooled_determinism.rs Cargo.toml

crates/core/tests/pooled_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
