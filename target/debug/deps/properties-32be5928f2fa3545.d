/root/repo/target/debug/deps/properties-32be5928f2fa3545.d: crates/sampler/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-32be5928f2fa3545.rmeta: crates/sampler/tests/properties.rs Cargo.toml

crates/sampler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
