/root/repo/target/debug/deps/properties-4841e28b6f1c8a27.d: crates/kernels/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4841e28b6f1c8a27.rmeta: crates/kernels/tests/properties.rs Cargo.toml

crates/kernels/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
