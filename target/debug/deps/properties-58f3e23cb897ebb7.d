/root/repo/target/debug/deps/properties-58f3e23cb897ebb7.d: crates/fixed/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-58f3e23cb897ebb7.rmeta: crates/fixed/tests/properties.rs Cargo.toml

crates/fixed/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
