/root/repo/target/debug/deps/properties-8edce1e57c5a4279.d: crates/rng/tests/properties.rs

/root/repo/target/debug/deps/properties-8edce1e57c5a4279: crates/rng/tests/properties.rs

crates/rng/tests/properties.rs:
