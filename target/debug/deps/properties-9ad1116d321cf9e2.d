/root/repo/target/debug/deps/properties-9ad1116d321cf9e2.d: crates/sampler/tests/properties.rs

/root/repo/target/debug/deps/properties-9ad1116d321cf9e2: crates/sampler/tests/properties.rs

crates/sampler/tests/properties.rs:
