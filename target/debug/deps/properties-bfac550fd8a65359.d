/root/repo/target/debug/deps/properties-bfac550fd8a65359.d: crates/rng/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bfac550fd8a65359.rmeta: crates/rng/tests/properties.rs Cargo.toml

crates/rng/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
