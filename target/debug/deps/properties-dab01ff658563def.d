/root/repo/target/debug/deps/properties-dab01ff658563def.d: crates/models/tests/properties.rs

/root/repo/target/debug/deps/properties-dab01ff658563def: crates/models/tests/properties.rs

crates/models/tests/properties.rs:
