/root/repo/target/debug/deps/properties-dea40b175c279db0.d: crates/fixed/tests/properties.rs

/root/repo/target/debug/deps/properties-dea40b175c279db0: crates/fixed/tests/properties.rs

crates/fixed/tests/properties.rs:
