/root/repo/target/debug/deps/properties-e084fa2f24348dc9.d: crates/models/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e084fa2f24348dc9.rmeta: crates/models/tests/properties.rs Cargo.toml

crates/models/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
