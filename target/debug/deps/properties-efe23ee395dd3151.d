/root/repo/target/debug/deps/properties-efe23ee395dd3151.d: crates/kernels/tests/properties.rs

/root/repo/target/debug/deps/properties-efe23ee395dd3151: crates/kernels/tests/properties.rs

crates/kernels/tests/properties.rs:
