/root/repo/target/debug/deps/robustness_diagnostics-56d197926153492f.d: crates/bench/src/bin/robustness_diagnostics.rs Cargo.toml

/root/repo/target/debug/deps/librobustness_diagnostics-56d197926153492f.rmeta: crates/bench/src/bin/robustness_diagnostics.rs Cargo.toml

crates/bench/src/bin/robustness_diagnostics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
