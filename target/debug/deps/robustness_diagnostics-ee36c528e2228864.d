/root/repo/target/debug/deps/robustness_diagnostics-ee36c528e2228864.d: crates/bench/src/bin/robustness_diagnostics.rs

/root/repo/target/debug/deps/robustness_diagnostics-ee36c528e2228864: crates/bench/src/bin/robustness_diagnostics.rs

crates/bench/src/bin/robustness_diagnostics.rs:
