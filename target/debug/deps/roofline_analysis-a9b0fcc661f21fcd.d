/root/repo/target/debug/deps/roofline_analysis-a9b0fcc661f21fcd.d: crates/bench/src/bin/roofline_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libroofline_analysis-a9b0fcc661f21fcd.rmeta: crates/bench/src/bin/roofline_analysis.rs Cargo.toml

crates/bench/src/bin/roofline_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
