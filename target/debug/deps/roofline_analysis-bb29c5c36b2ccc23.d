/root/repo/target/debug/deps/roofline_analysis-bb29c5c36b2ccc23.d: crates/bench/src/bin/roofline_analysis.rs

/root/repo/target/debug/deps/roofline_analysis-bb29c5c36b2ccc23: crates/bench/src/bin/roofline_analysis.rs

crates/bench/src/bin/roofline_analysis.rs:
