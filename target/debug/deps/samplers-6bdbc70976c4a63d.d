/root/repo/target/debug/deps/samplers-6bdbc70976c4a63d.d: crates/bench/benches/samplers.rs Cargo.toml

/root/repo/target/debug/deps/libsamplers-6bdbc70976c4a63d.rmeta: crates/bench/benches/samplers.rs Cargo.toml

crates/bench/benches/samplers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
