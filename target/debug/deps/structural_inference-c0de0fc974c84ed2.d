/root/repo/target/debug/deps/structural_inference-c0de0fc974c84ed2.d: tests/structural_inference.rs Cargo.toml

/root/repo/target/debug/deps/libstructural_inference-c0de0fc974c84ed2.rmeta: tests/structural_inference.rs Cargo.toml

tests/structural_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
