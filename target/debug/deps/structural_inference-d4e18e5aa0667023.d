/root/repo/target/debug/deps/structural_inference-d4e18e5aa0667023.d: tests/structural_inference.rs

/root/repo/target/debug/deps/structural_inference-d4e18e5aa0667023: tests/structural_inference.rs

tests/structural_inference.rs:
