/root/repo/target/debug/deps/table1_workloads-7498ebbbe3e73516.d: crates/bench/src/bin/table1_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_workloads-7498ebbbe3e73516.rmeta: crates/bench/src/bin/table1_workloads.rs Cargo.toml

crates/bench/src/bin/table1_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
