/root/repo/target/debug/deps/table1_workloads-a4ca714d625b85bd.d: crates/bench/src/bin/table1_workloads.rs

/root/repo/target/debug/deps/table1_workloads-a4ca714d625b85bd: crates/bench/src/bin/table1_workloads.rs

crates/bench/src/bin/table1_workloads.rs:
