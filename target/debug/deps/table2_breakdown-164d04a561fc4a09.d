/root/repo/target/debug/deps/table2_breakdown-164d04a561fc4a09.d: crates/bench/src/bin/table2_breakdown.rs

/root/repo/target/debug/deps/table2_breakdown-164d04a561fc4a09: crates/bench/src/bin/table2_breakdown.rs

crates/bench/src/bin/table2_breakdown.rs:
