/root/repo/target/debug/deps/table2_breakdown-56ff3d77cebe8740.d: crates/bench/src/bin/table2_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_breakdown-56ff3d77cebe8740.rmeta: crates/bench/src/bin/table2_breakdown.rs Cargo.toml

crates/bench/src/bin/table2_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
