/root/repo/target/debug/deps/table2_breakdown-e6583da03d312bfd.d: crates/bench/src/bin/table2_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_breakdown-e6583da03d312bfd.rmeta: crates/bench/src/bin/table2_breakdown.rs Cargo.toml

crates/bench/src/bin/table2_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
