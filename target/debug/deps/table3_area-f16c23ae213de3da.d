/root/repo/target/debug/deps/table3_area-f16c23ae213de3da.d: crates/bench/src/bin/table3_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_area-f16c23ae213de3da.rmeta: crates/bench/src/bin/table3_area.rs Cargo.toml

crates/bench/src/bin/table3_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
