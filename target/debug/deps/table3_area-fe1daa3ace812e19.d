/root/repo/target/debug/deps/table3_area-fe1daa3ace812e19.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/debug/deps/table3_area-fe1daa3ace812e19: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
