/root/repo/target/debug/deps/table4_end_to_end-8cc7620a53ad0a5a.d: crates/bench/src/bin/table4_end_to_end.rs

/root/repo/target/debug/deps/table4_end_to_end-8cc7620a53ad0a5a: crates/bench/src/bin/table4_end_to_end.rs

crates/bench/src/bin/table4_end_to_end.rs:
