/root/repo/target/debug/deps/table4_end_to_end-f48bf067fac07374.d: crates/bench/src/bin/table4_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_end_to_end-f48bf067fac07374.rmeta: crates/bench/src/bin/table4_end_to_end.rs Cargo.toml

crates/bench/src/bin/table4_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
