/root/repo/target/debug/examples/chain_doctor-606a93f3a5b2c8e3.d: examples/chain_doctor.rs Cargo.toml

/root/repo/target/debug/examples/libchain_doctor-606a93f3a5b2c8e3.rmeta: examples/chain_doctor.rs Cargo.toml

examples/chain_doctor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
