/root/repo/target/debug/examples/chain_doctor-9e8184c605f40c35.d: examples/chain_doctor.rs

/root/repo/target/debug/examples/chain_doctor-9e8184c605f40c35: examples/chain_doctor.rs

examples/chain_doctor.rs:
