/root/repo/target/debug/examples/denoise_to_image-0c4471c5fa452409.d: examples/denoise_to_image.rs

/root/repo/target/debug/examples/denoise_to_image-0c4471c5fa452409: examples/denoise_to_image.rs

examples/denoise_to_image.rs:
