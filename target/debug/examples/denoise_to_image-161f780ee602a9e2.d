/root/repo/target/debug/examples/denoise_to_image-161f780ee602a9e2.d: examples/denoise_to_image.rs Cargo.toml

/root/repo/target/debug/examples/libdenoise_to_image-161f780ee602a9e2.rmeta: examples/denoise_to_image.rs Cargo.toml

examples/denoise_to_image.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
