/root/repo/target/debug/examples/hardware_trace-c3c2f546630887df.d: examples/hardware_trace.rs

/root/repo/target/debug/examples/hardware_trace-c3c2f546630887df: examples/hardware_trace.rs

examples/hardware_trace.rs:
