/root/repo/target/debug/examples/hardware_trace-de75368d3328056d.d: examples/hardware_trace.rs Cargo.toml

/root/repo/target/debug/examples/libhardware_trace-de75368d3328056d.rmeta: examples/hardware_trace.rs Cargo.toml

examples/hardware_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
