/root/repo/target/debug/examples/image_restoration-53d154e25dff932e.d: examples/image_restoration.rs

/root/repo/target/debug/examples/image_restoration-53d154e25dff932e: examples/image_restoration.rs

examples/image_restoration.rs:
