/root/repo/target/debug/examples/image_restoration-d4cae4a3c58ffe37.d: examples/image_restoration.rs Cargo.toml

/root/repo/target/debug/examples/libimage_restoration-d4cae4a3c58ffe37.rmeta: examples/image_restoration.rs Cargo.toml

examples/image_restoration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
