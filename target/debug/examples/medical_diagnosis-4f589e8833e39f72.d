/root/repo/target/debug/examples/medical_diagnosis-4f589e8833e39f72.d: examples/medical_diagnosis.rs

/root/repo/target/debug/examples/medical_diagnosis-4f589e8833e39f72: examples/medical_diagnosis.rs

examples/medical_diagnosis.rs:
