/root/repo/target/debug/examples/medical_diagnosis-bc0da2225ed76e88.d: examples/medical_diagnosis.rs Cargo.toml

/root/repo/target/debug/examples/libmedical_diagnosis-bc0da2225ed76e88.rmeta: examples/medical_diagnosis.rs Cargo.toml

examples/medical_diagnosis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
