/root/repo/target/debug/examples/quickstart-8d5db08b87e03b2d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8d5db08b87e03b2d: examples/quickstart.rs

examples/quickstart.rs:
