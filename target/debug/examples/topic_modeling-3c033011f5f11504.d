/root/repo/target/debug/examples/topic_modeling-3c033011f5f11504.d: examples/topic_modeling.rs

/root/repo/target/debug/examples/topic_modeling-3c033011f5f11504: examples/topic_modeling.rs

examples/topic_modeling.rs:
