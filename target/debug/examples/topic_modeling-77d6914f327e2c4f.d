/root/repo/target/debug/examples/topic_modeling-77d6914f327e2c4f.d: examples/topic_modeling.rs Cargo.toml

/root/repo/target/debug/examples/libtopic_modeling-77d6914f327e2c4f.rmeta: examples/topic_modeling.rs Cargo.toml

examples/topic_modeling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
