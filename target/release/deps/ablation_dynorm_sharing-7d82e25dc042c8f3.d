/root/repo/target/release/deps/ablation_dynorm_sharing-7d82e25dc042c8f3.d: crates/bench/src/bin/ablation_dynorm_sharing.rs

/root/repo/target/release/deps/ablation_dynorm_sharing-7d82e25dc042c8f3: crates/bench/src/bin/ablation_dynorm_sharing.rs

crates/bench/src/bin/ablation_dynorm_sharing.rs:
