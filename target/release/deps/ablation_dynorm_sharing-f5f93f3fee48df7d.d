/root/repo/target/release/deps/ablation_dynorm_sharing-f5f93f3fee48df7d.d: crates/bench/src/bin/ablation_dynorm_sharing.rs

/root/repo/target/release/deps/ablation_dynorm_sharing-f5f93f3fee48df7d: crates/bench/src/bin/ablation_dynorm_sharing.rs

crates/bench/src/bin/ablation_dynorm_sharing.rs:
