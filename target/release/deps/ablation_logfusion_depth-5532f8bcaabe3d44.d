/root/repo/target/release/deps/ablation_logfusion_depth-5532f8bcaabe3d44.d: crates/bench/src/bin/ablation_logfusion_depth.rs

/root/repo/target/release/deps/ablation_logfusion_depth-5532f8bcaabe3d44: crates/bench/src/bin/ablation_logfusion_depth.rs

crates/bench/src/bin/ablation_logfusion_depth.rs:
