/root/repo/target/release/deps/ablation_logfusion_depth-afa3f443bf67cb8e.d: crates/bench/src/bin/ablation_logfusion_depth.rs

/root/repo/target/release/deps/ablation_logfusion_depth-afa3f443bf67cb8e: crates/bench/src/bin/ablation_logfusion_depth.rs

crates/bench/src/bin/ablation_logfusion_depth.rs:
