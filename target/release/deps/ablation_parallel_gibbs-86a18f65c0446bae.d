/root/repo/target/release/deps/ablation_parallel_gibbs-86a18f65c0446bae.d: crates/bench/src/bin/ablation_parallel_gibbs.rs

/root/repo/target/release/deps/ablation_parallel_gibbs-86a18f65c0446bae: crates/bench/src/bin/ablation_parallel_gibbs.rs

crates/bench/src/bin/ablation_parallel_gibbs.rs:
