/root/repo/target/release/deps/ablation_parallel_gibbs-a066270a6c62e0b5.d: crates/bench/src/bin/ablation_parallel_gibbs.rs

/root/repo/target/release/deps/ablation_parallel_gibbs-a066270a6c62e0b5: crates/bench/src/bin/ablation_parallel_gibbs.rs

crates/bench/src/bin/ablation_parallel_gibbs.rs:
