/root/repo/target/release/deps/ablation_pg_pipelines-607c07fca432759d.d: crates/bench/src/bin/ablation_pg_pipelines.rs

/root/repo/target/release/deps/ablation_pg_pipelines-607c07fca432759d: crates/bench/src/bin/ablation_pg_pipelines.rs

crates/bench/src/bin/ablation_pg_pipelines.rs:
