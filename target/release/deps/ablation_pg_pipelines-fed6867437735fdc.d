/root/repo/target/release/deps/ablation_pg_pipelines-fed6867437735fdc.d: crates/bench/src/bin/ablation_pg_pipelines.rs

/root/repo/target/release/deps/ablation_pg_pipelines-fed6867437735fdc: crates/bench/src/bin/ablation_pg_pipelines.rs

crates/bench/src/bin/ablation_pg_pipelines.rs:
