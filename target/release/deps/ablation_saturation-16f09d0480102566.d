/root/repo/target/release/deps/ablation_saturation-16f09d0480102566.d: crates/bench/src/bin/ablation_saturation.rs

/root/repo/target/release/deps/ablation_saturation-16f09d0480102566: crates/bench/src/bin/ablation_saturation.rs

crates/bench/src/bin/ablation_saturation.rs:
