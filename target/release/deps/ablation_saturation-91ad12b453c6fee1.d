/root/repo/target/release/deps/ablation_saturation-91ad12b453c6fee1.d: crates/bench/src/bin/ablation_saturation.rs

/root/repo/target/release/deps/ablation_saturation-91ad12b453c6fee1: crates/bench/src/bin/ablation_saturation.rs

crates/bench/src/bin/ablation_saturation.rs:
