/root/repo/target/release/deps/ablation_step_lut-87444d7165ff0e5f.d: crates/bench/src/bin/ablation_step_lut.rs

/root/repo/target/release/deps/ablation_step_lut-87444d7165ff0e5f: crates/bench/src/bin/ablation_step_lut.rs

crates/bench/src/bin/ablation_step_lut.rs:
