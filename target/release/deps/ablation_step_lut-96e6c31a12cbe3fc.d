/root/repo/target/release/deps/ablation_step_lut-96e6c31a12cbe3fc.d: crates/bench/src/bin/ablation_step_lut.rs

/root/repo/target/release/deps/ablation_step_lut-96e6c31a12cbe3fc: crates/bench/src/bin/ablation_step_lut.rs

crates/bench/src/bin/ablation_step_lut.rs:
