/root/repo/target/release/deps/alloc_free-46fea9198a9a007c.d: crates/core/tests/alloc_free.rs

/root/repo/target/release/deps/alloc_free-46fea9198a9a007c: crates/core/tests/alloc_free.rs

crates/core/tests/alloc_free.rs:
