/root/repo/target/release/deps/consistency-deb9a3d47581fbf6.d: crates/hw/tests/consistency.rs

/root/repo/target/release/deps/consistency-deb9a3d47581fbf6: crates/hw/tests/consistency.rs

crates/hw/tests/consistency.rs:
