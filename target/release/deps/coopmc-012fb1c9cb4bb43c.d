/root/repo/target/release/deps/coopmc-012fb1c9cb4bb43c.d: src/lib.rs

/root/repo/target/release/deps/coopmc-012fb1c9cb4bb43c: src/lib.rs

src/lib.rs:
