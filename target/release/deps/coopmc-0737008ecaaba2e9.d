/root/repo/target/release/deps/coopmc-0737008ecaaba2e9.d: src/main.rs

/root/repo/target/release/deps/coopmc-0737008ecaaba2e9: src/main.rs

src/main.rs:
