/root/repo/target/release/deps/coopmc-3da5ceab7a58f0ab.d: src/main.rs

/root/repo/target/release/deps/coopmc-3da5ceab7a58f0ab: src/main.rs

src/main.rs:
