/root/repo/target/release/deps/coopmc-d85b7128a9da7bcf.d: src/lib.rs

/root/repo/target/release/deps/libcoopmc-d85b7128a9da7bcf.rlib: src/lib.rs

/root/repo/target/release/deps/libcoopmc-d85b7128a9da7bcf.rmeta: src/lib.rs

src/lib.rs:
