/root/repo/target/release/deps/coopmc_bench-4cac4d50a2ef6d65.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/coopmc_bench-4cac4d50a2ef6d65: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
