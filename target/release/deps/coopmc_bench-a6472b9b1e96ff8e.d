/root/repo/target/release/deps/coopmc_bench-a6472b9b1e96ff8e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcoopmc_bench-a6472b9b1e96ff8e.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libcoopmc_bench-a6472b9b1e96ff8e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
