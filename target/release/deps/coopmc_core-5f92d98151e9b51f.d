/root/repo/target/release/deps/coopmc_core-5f92d98151e9b51f.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/release/deps/libcoopmc_core-5f92d98151e9b51f.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/release/deps/libcoopmc_core-5f92d98151e9b51f.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/experiments.rs:
crates/core/src/metropolis.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
