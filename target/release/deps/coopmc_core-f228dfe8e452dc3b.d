/root/repo/target/release/deps/coopmc_core-f228dfe8e452dc3b.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

/root/repo/target/release/deps/coopmc_core-f228dfe8e452dc3b: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/experiments.rs crates/core/src/metropolis.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/pool.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/experiments.rs:
crates/core/src/metropolis.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/pool.rs:
