/root/repo/target/release/deps/coopmc_fixed-587b7e9e6a300201.d: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

/root/repo/target/release/deps/libcoopmc_fixed-587b7e9e6a300201.rlib: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

/root/repo/target/release/deps/libcoopmc_fixed-587b7e9e6a300201.rmeta: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

crates/fixed/src/lib.rs:
crates/fixed/src/format.rs:
crates/fixed/src/value.rs:
