/root/repo/target/release/deps/coopmc_fixed-d736b54ced29ef60.d: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

/root/repo/target/release/deps/coopmc_fixed-d736b54ced29ef60: crates/fixed/src/lib.rs crates/fixed/src/format.rs crates/fixed/src/value.rs

crates/fixed/src/lib.rs:
crates/fixed/src/format.rs:
crates/fixed/src/value.rs:
