/root/repo/target/release/deps/coopmc_hw-4943df9dc10dedfa.d: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

/root/repo/target/release/deps/coopmc_hw-4943df9dc10dedfa: crates/hw/src/lib.rs crates/hw/src/accel.rs crates/hw/src/area.rs crates/hw/src/cycles.rs crates/hw/src/mem.rs crates/hw/src/pgpipe.rs crates/hw/src/power.rs crates/hw/src/roofline.rs

crates/hw/src/lib.rs:
crates/hw/src/accel.rs:
crates/hw/src/area.rs:
crates/hw/src/cycles.rs:
crates/hw/src/mem.rs:
crates/hw/src/pgpipe.rs:
crates/hw/src/power.rs:
crates/hw/src/roofline.rs:
