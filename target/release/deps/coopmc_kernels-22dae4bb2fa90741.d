/root/repo/target/release/deps/coopmc_kernels-22dae4bb2fa90741.d: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

/root/repo/target/release/deps/coopmc_kernels-22dae4bb2fa90741: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cost.rs:
crates/kernels/src/dynorm.rs:
crates/kernels/src/error.rs:
crates/kernels/src/exp.rs:
crates/kernels/src/faults.rs:
crates/kernels/src/fusion.rs:
crates/kernels/src/log.rs:
