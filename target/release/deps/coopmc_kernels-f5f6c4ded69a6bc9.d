/root/repo/target/release/deps/coopmc_kernels-f5f6c4ded69a6bc9.d: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

/root/repo/target/release/deps/libcoopmc_kernels-f5f6c4ded69a6bc9.rlib: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

/root/repo/target/release/deps/libcoopmc_kernels-f5f6c4ded69a6bc9.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cost.rs crates/kernels/src/dynorm.rs crates/kernels/src/error.rs crates/kernels/src/exp.rs crates/kernels/src/faults.rs crates/kernels/src/fusion.rs crates/kernels/src/log.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cost.rs:
crates/kernels/src/dynorm.rs:
crates/kernels/src/error.rs:
crates/kernels/src/exp.rs:
crates/kernels/src/faults.rs:
crates/kernels/src/fusion.rs:
crates/kernels/src/log.rs:
