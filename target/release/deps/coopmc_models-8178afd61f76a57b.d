/root/repo/target/release/deps/coopmc_models-8178afd61f76a57b.d: crates/models/src/lib.rs crates/models/src/bn/mod.rs crates/models/src/bn/exact.rs crates/models/src/bn/networks.rs crates/models/src/bn/sampling.rs crates/models/src/coloring.rs crates/models/src/diagnostics.rs crates/models/src/lda/mod.rs crates/models/src/lda/corpus.rs crates/models/src/lda/inference.rs crates/models/src/lda/sparse.rs crates/models/src/metrics.rs crates/models/src/mrf/mod.rs crates/models/src/mrf/apps.rs crates/models/src/workloads.rs

/root/repo/target/release/deps/coopmc_models-8178afd61f76a57b: crates/models/src/lib.rs crates/models/src/bn/mod.rs crates/models/src/bn/exact.rs crates/models/src/bn/networks.rs crates/models/src/bn/sampling.rs crates/models/src/coloring.rs crates/models/src/diagnostics.rs crates/models/src/lda/mod.rs crates/models/src/lda/corpus.rs crates/models/src/lda/inference.rs crates/models/src/lda/sparse.rs crates/models/src/metrics.rs crates/models/src/mrf/mod.rs crates/models/src/mrf/apps.rs crates/models/src/workloads.rs

crates/models/src/lib.rs:
crates/models/src/bn/mod.rs:
crates/models/src/bn/exact.rs:
crates/models/src/bn/networks.rs:
crates/models/src/bn/sampling.rs:
crates/models/src/coloring.rs:
crates/models/src/diagnostics.rs:
crates/models/src/lda/mod.rs:
crates/models/src/lda/corpus.rs:
crates/models/src/lda/inference.rs:
crates/models/src/lda/sparse.rs:
crates/models/src/metrics.rs:
crates/models/src/mrf/mod.rs:
crates/models/src/mrf/apps.rs:
crates/models/src/workloads.rs:
