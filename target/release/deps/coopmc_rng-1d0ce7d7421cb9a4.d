/root/repo/target/release/deps/coopmc_rng-1d0ce7d7421cb9a4.d: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

/root/repo/target/release/deps/libcoopmc_rng-1d0ce7d7421cb9a4.rlib: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

/root/repo/target/release/deps/libcoopmc_rng-1d0ce7d7421cb9a4.rmeta: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

crates/rng/src/lib.rs:
crates/rng/src/counting.rs:
crates/rng/src/lfsr.rs:
crates/rng/src/philox.rs:
crates/rng/src/splitmix.rs:
crates/rng/src/xorshift.rs:
