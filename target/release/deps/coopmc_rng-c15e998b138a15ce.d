/root/repo/target/release/deps/coopmc_rng-c15e998b138a15ce.d: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

/root/repo/target/release/deps/coopmc_rng-c15e998b138a15ce: crates/rng/src/lib.rs crates/rng/src/counting.rs crates/rng/src/lfsr.rs crates/rng/src/philox.rs crates/rng/src/splitmix.rs crates/rng/src/xorshift.rs

crates/rng/src/lib.rs:
crates/rng/src/counting.rs:
crates/rng/src/lfsr.rs:
crates/rng/src/philox.rs:
crates/rng/src/splitmix.rs:
crates/rng/src/xorshift.rs:
