/root/repo/target/release/deps/coopmc_sampler-36ec8374acc7821e.d: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

/root/repo/target/release/deps/coopmc_sampler-36ec8374acc7821e: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

crates/sampler/src/lib.rs:
crates/sampler/src/alias.rs:
crates/sampler/src/pipe.rs:
crates/sampler/src/sequential.rs:
crates/sampler/src/tree.rs:
