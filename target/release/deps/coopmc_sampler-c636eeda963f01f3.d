/root/repo/target/release/deps/coopmc_sampler-c636eeda963f01f3.d: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

/root/repo/target/release/deps/libcoopmc_sampler-c636eeda963f01f3.rlib: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

/root/repo/target/release/deps/libcoopmc_sampler-c636eeda963f01f3.rmeta: crates/sampler/src/lib.rs crates/sampler/src/alias.rs crates/sampler/src/pipe.rs crates/sampler/src/sequential.rs crates/sampler/src/tree.rs

crates/sampler/src/lib.rs:
crates/sampler/src/alias.rs:
crates/sampler/src/pipe.rs:
crates/sampler/src/sequential.rs:
crates/sampler/src/tree.rs:
