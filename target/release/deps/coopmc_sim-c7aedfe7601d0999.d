/root/repo/target/release/deps/coopmc_sim-c7aedfe7601d0999.d: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

/root/repo/target/release/deps/coopmc_sim-c7aedfe7601d0999: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

crates/sim/src/lib.rs:
crates/sim/src/circuits.rs:
crates/sim/src/netlist.rs:
