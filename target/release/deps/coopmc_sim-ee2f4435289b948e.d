/root/repo/target/release/deps/coopmc_sim-ee2f4435289b948e.d: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

/root/repo/target/release/deps/libcoopmc_sim-ee2f4435289b948e.rlib: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

/root/repo/target/release/deps/libcoopmc_sim-ee2f4435289b948e.rmeta: crates/sim/src/lib.rs crates/sim/src/circuits.rs crates/sim/src/netlist.rs

crates/sim/src/lib.rs:
crates/sim/src/circuits.rs:
crates/sim/src/netlist.rs:
