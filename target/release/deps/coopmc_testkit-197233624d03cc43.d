/root/repo/target/release/deps/coopmc_testkit-197233624d03cc43.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libcoopmc_testkit-197233624d03cc43.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libcoopmc_testkit-197233624d03cc43.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
