/root/repo/target/release/deps/coopmc_testkit-42db618ece1aa4bc.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/coopmc_testkit-42db618ece1aa4bc: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
