/root/repo/target/release/deps/end_to_end_bn-aba4dbb145a22d43.d: tests/end_to_end_bn.rs

/root/repo/target/release/deps/end_to_end_bn-aba4dbb145a22d43: tests/end_to_end_bn.rs

tests/end_to_end_bn.rs:
