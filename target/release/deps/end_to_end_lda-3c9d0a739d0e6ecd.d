/root/repo/target/release/deps/end_to_end_lda-3c9d0a739d0e6ecd.d: tests/end_to_end_lda.rs

/root/repo/target/release/deps/end_to_end_lda-3c9d0a739d0e6ecd: tests/end_to_end_lda.rs

tests/end_to_end_lda.rs:
