/root/repo/target/release/deps/end_to_end_mrf-4a8e889120cc4671.d: tests/end_to_end_mrf.rs

/root/repo/target/release/deps/end_to_end_mrf-4a8e889120cc4671: tests/end_to_end_mrf.rs

tests/end_to_end_mrf.rs:
