/root/repo/target/release/deps/equivalence-640ad9c18fdb8788.d: crates/sim/tests/equivalence.rs

/root/repo/target/release/deps/equivalence-640ad9c18fdb8788: crates/sim/tests/equivalence.rs

crates/sim/tests/equivalence.rs:
