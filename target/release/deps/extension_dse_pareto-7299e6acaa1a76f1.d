/root/repo/target/release/deps/extension_dse_pareto-7299e6acaa1a76f1.d: crates/bench/src/bin/extension_dse_pareto.rs

/root/repo/target/release/deps/extension_dse_pareto-7299e6acaa1a76f1: crates/bench/src/bin/extension_dse_pareto.rs

crates/bench/src/bin/extension_dse_pareto.rs:
