/root/repo/target/release/deps/extension_dse_pareto-7c9454ca9a67703f.d: crates/bench/src/bin/extension_dse_pareto.rs

/root/repo/target/release/deps/extension_dse_pareto-7c9454ca9a67703f: crates/bench/src/bin/extension_dse_pareto.rs

crates/bench/src/bin/extension_dse_pareto.rs:
