/root/repo/target/release/deps/extension_fault_injection-02d77f1155d8d65c.d: crates/bench/src/bin/extension_fault_injection.rs

/root/repo/target/release/deps/extension_fault_injection-02d77f1155d8d65c: crates/bench/src/bin/extension_fault_injection.rs

crates/bench/src/bin/extension_fault_injection.rs:
