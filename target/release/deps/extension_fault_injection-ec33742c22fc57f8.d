/root/repo/target/release/deps/extension_fault_injection-ec33742c22fc57f8.d: crates/bench/src/bin/extension_fault_injection.rs

/root/repo/target/release/deps/extension_fault_injection-ec33742c22fc57f8: crates/bench/src/bin/extension_fault_injection.rs

crates/bench/src/bin/extension_fault_injection.rs:
