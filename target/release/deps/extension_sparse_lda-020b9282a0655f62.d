/root/repo/target/release/deps/extension_sparse_lda-020b9282a0655f62.d: crates/bench/src/bin/extension_sparse_lda.rs

/root/repo/target/release/deps/extension_sparse_lda-020b9282a0655f62: crates/bench/src/bin/extension_sparse_lda.rs

crates/bench/src/bin/extension_sparse_lda.rs:
