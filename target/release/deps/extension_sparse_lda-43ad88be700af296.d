/root/repo/target/release/deps/extension_sparse_lda-43ad88be700af296.d: crates/bench/src/bin/extension_sparse_lda.rs

/root/repo/target/release/deps/extension_sparse_lda-43ad88be700af296: crates/bench/src/bin/extension_sparse_lda.rs

crates/bench/src/bin/extension_sparse_lda.rs:
