/root/repo/target/release/deps/extension_workload_speedups-105cd5a80e3b4365.d: crates/bench/src/bin/extension_workload_speedups.rs

/root/repo/target/release/deps/extension_workload_speedups-105cd5a80e3b4365: crates/bench/src/bin/extension_workload_speedups.rs

crates/bench/src/bin/extension_workload_speedups.rs:
