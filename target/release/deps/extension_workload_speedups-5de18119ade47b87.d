/root/repo/target/release/deps/extension_workload_speedups-5de18119ade47b87.d: crates/bench/src/bin/extension_workload_speedups.rs

/root/repo/target/release/deps/extension_workload_speedups-5de18119ade47b87: crates/bench/src/bin/extension_workload_speedups.rs

crates/bench/src/bin/extension_workload_speedups.rs:
