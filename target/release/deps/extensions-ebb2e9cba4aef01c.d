/root/repo/target/release/deps/extensions-ebb2e9cba4aef01c.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-ebb2e9cba4aef01c: tests/extensions.rs

tests/extensions.rs:
