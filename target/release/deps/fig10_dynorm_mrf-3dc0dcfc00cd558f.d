/root/repo/target/release/deps/fig10_dynorm_mrf-3dc0dcfc00cd558f.d: crates/bench/src/bin/fig10_dynorm_mrf.rs

/root/repo/target/release/deps/fig10_dynorm_mrf-3dc0dcfc00cd558f: crates/bench/src/bin/fig10_dynorm_mrf.rs

crates/bench/src/bin/fig10_dynorm_mrf.rs:
