/root/repo/target/release/deps/fig10_dynorm_mrf-edb4110c7afb5c75.d: crates/bench/src/bin/fig10_dynorm_mrf.rs

/root/repo/target/release/deps/fig10_dynorm_mrf-edb4110c7afb5c75: crates/bench/src/bin/fig10_dynorm_mrf.rs

crates/bench/src/bin/fig10_dynorm_mrf.rs:
