/root/repo/target/release/deps/fig11_tableexp_mrf-3bd46bc20342fb82.d: crates/bench/src/bin/fig11_tableexp_mrf.rs

/root/repo/target/release/deps/fig11_tableexp_mrf-3bd46bc20342fb82: crates/bench/src/bin/fig11_tableexp_mrf.rs

crates/bench/src/bin/fig11_tableexp_mrf.rs:
