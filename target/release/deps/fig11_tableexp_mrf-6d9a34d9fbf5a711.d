/root/repo/target/release/deps/fig11_tableexp_mrf-6d9a34d9fbf5a711.d: crates/bench/src/bin/fig11_tableexp_mrf.rs

/root/repo/target/release/deps/fig11_tableexp_mrf-6d9a34d9fbf5a711: crates/bench/src/bin/fig11_tableexp_mrf.rs

crates/bench/src/bin/fig11_tableexp_mrf.rs:
