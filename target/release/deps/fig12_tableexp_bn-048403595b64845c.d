/root/repo/target/release/deps/fig12_tableexp_bn-048403595b64845c.d: crates/bench/src/bin/fig12_tableexp_bn.rs

/root/repo/target/release/deps/fig12_tableexp_bn-048403595b64845c: crates/bench/src/bin/fig12_tableexp_bn.rs

crates/bench/src/bin/fig12_tableexp_bn.rs:
