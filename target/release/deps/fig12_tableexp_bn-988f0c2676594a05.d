/root/repo/target/release/deps/fig12_tableexp_bn-988f0c2676594a05.d: crates/bench/src/bin/fig12_tableexp_bn.rs

/root/repo/target/release/deps/fig12_tableexp_bn-988f0c2676594a05: crates/bench/src/bin/fig12_tableexp_bn.rs

crates/bench/src/bin/fig12_tableexp_bn.rs:
