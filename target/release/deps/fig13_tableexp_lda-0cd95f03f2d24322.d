/root/repo/target/release/deps/fig13_tableexp_lda-0cd95f03f2d24322.d: crates/bench/src/bin/fig13_tableexp_lda.rs

/root/repo/target/release/deps/fig13_tableexp_lda-0cd95f03f2d24322: crates/bench/src/bin/fig13_tableexp_lda.rs

crates/bench/src/bin/fig13_tableexp_lda.rs:
