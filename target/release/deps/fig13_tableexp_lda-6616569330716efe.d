/root/repo/target/release/deps/fig13_tableexp_lda-6616569330716efe.d: crates/bench/src/bin/fig13_tableexp_lda.rs

/root/repo/target/release/deps/fig13_tableexp_lda-6616569330716efe: crates/bench/src/bin/fig13_tableexp_lda.rs

crates/bench/src/bin/fig13_tableexp_lda.rs:
