/root/repo/target/release/deps/fig14_sampler_area-6e66c845792c252f.d: crates/bench/src/bin/fig14_sampler_area.rs

/root/repo/target/release/deps/fig14_sampler_area-6e66c845792c252f: crates/bench/src/bin/fig14_sampler_area.rs

crates/bench/src/bin/fig14_sampler_area.rs:
