/root/repo/target/release/deps/fig14_sampler_area-9d31f3d8eddfd9e0.d: crates/bench/src/bin/fig14_sampler_area.rs

/root/repo/target/release/deps/fig14_sampler_area-9d31f3d8eddfd9e0: crates/bench/src/bin/fig14_sampler_area.rs

crates/bench/src/bin/fig14_sampler_area.rs:
