/root/repo/target/release/deps/fig15_sampler_efficiency-5b42e9a296bbbf44.d: crates/bench/src/bin/fig15_sampler_efficiency.rs

/root/repo/target/release/deps/fig15_sampler_efficiency-5b42e9a296bbbf44: crates/bench/src/bin/fig15_sampler_efficiency.rs

crates/bench/src/bin/fig15_sampler_efficiency.rs:
