/root/repo/target/release/deps/fig15_sampler_efficiency-bce3bceae39d0914.d: crates/bench/src/bin/fig15_sampler_efficiency.rs

/root/repo/target/release/deps/fig15_sampler_efficiency-bce3bceae39d0914: crates/bench/src/bin/fig15_sampler_efficiency.rs

crates/bench/src/bin/fig15_sampler_efficiency.rs:
