/root/repo/target/release/deps/fig2_dynorm_precision-1ce148dc010d09e4.d: crates/bench/src/bin/fig2_dynorm_precision.rs

/root/repo/target/release/deps/fig2_dynorm_precision-1ce148dc010d09e4: crates/bench/src/bin/fig2_dynorm_precision.rs

crates/bench/src/bin/fig2_dynorm_precision.rs:
