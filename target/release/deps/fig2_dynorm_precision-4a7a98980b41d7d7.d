/root/repo/target/release/deps/fig2_dynorm_precision-4a7a98980b41d7d7.d: crates/bench/src/bin/fig2_dynorm_precision.rs

/root/repo/target/release/deps/fig2_dynorm_precision-4a7a98980b41d7d7: crates/bench/src/bin/fig2_dynorm_precision.rs

crates/bench/src/bin/fig2_dynorm_precision.rs:
