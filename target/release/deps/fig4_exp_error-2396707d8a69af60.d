/root/repo/target/release/deps/fig4_exp_error-2396707d8a69af60.d: crates/bench/src/bin/fig4_exp_error.rs

/root/repo/target/release/deps/fig4_exp_error-2396707d8a69af60: crates/bench/src/bin/fig4_exp_error.rs

crates/bench/src/bin/fig4_exp_error.rs:
