/root/repo/target/release/deps/fig4_exp_error-365b83b02e32c58c.d: crates/bench/src/bin/fig4_exp_error.rs

/root/repo/target/release/deps/fig4_exp_error-365b83b02e32c58c: crates/bench/src/bin/fig4_exp_error.rs

crates/bench/src/bin/fig4_exp_error.rs:
