/root/repo/target/release/deps/fig7_tableexp_stereo-a0abf922d9d0c073.d: crates/bench/src/bin/fig7_tableexp_stereo.rs

/root/repo/target/release/deps/fig7_tableexp_stereo-a0abf922d9d0c073: crates/bench/src/bin/fig7_tableexp_stereo.rs

crates/bench/src/bin/fig7_tableexp_stereo.rs:
