/root/repo/target/release/deps/fig7_tableexp_stereo-c9bf0bc04cc57841.d: crates/bench/src/bin/fig7_tableexp_stereo.rs

/root/repo/target/release/deps/fig7_tableexp_stereo-c9bf0bc04cc57841: crates/bench/src/bin/fig7_tableexp_stereo.rs

crates/bench/src/bin/fig7_tableexp_stereo.rs:
