/root/repo/target/release/deps/fig9_sampler_speedup-08484faab2bb6f0b.d: crates/bench/src/bin/fig9_sampler_speedup.rs

/root/repo/target/release/deps/fig9_sampler_speedup-08484faab2bb6f0b: crates/bench/src/bin/fig9_sampler_speedup.rs

crates/bench/src/bin/fig9_sampler_speedup.rs:
