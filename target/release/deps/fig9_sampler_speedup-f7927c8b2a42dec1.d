/root/repo/target/release/deps/fig9_sampler_speedup-f7927c8b2a42dec1.d: crates/bench/src/bin/fig9_sampler_speedup.rs

/root/repo/target/release/deps/fig9_sampler_speedup-f7927c8b2a42dec1: crates/bench/src/bin/fig9_sampler_speedup.rs

crates/bench/src/bin/fig9_sampler_speedup.rs:
