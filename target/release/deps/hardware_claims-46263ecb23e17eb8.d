/root/repo/target/release/deps/hardware_claims-46263ecb23e17eb8.d: tests/hardware_claims.rs

/root/repo/target/release/deps/hardware_claims-46263ecb23e17eb8: tests/hardware_claims.rs

tests/hardware_claims.rs:
