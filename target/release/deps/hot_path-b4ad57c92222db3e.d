/root/repo/target/release/deps/hot_path-b4ad57c92222db3e.d: crates/bench/benches/hot_path.rs

/root/repo/target/release/deps/hot_path-b4ad57c92222db3e: crates/bench/benches/hot_path.rs

crates/bench/benches/hot_path.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
