/root/repo/target/release/deps/kernels-b3dba9656a9d0862.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-b3dba9656a9d0862: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
