/root/repo/target/release/deps/matrix-4ae0d69f0858d214.d: crates/core/tests/matrix.rs

/root/repo/target/release/deps/matrix-4ae0d69f0858d214: crates/core/tests/matrix.rs

crates/core/tests/matrix.rs:
