/root/repo/target/release/deps/models-183344dd7f9bd000.d: crates/bench/benches/models.rs

/root/repo/target/release/deps/models-183344dd7f9bd000: crates/bench/benches/models.rs

crates/bench/benches/models.rs:
