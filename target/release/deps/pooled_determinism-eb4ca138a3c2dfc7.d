/root/repo/target/release/deps/pooled_determinism-eb4ca138a3c2dfc7.d: crates/core/tests/pooled_determinism.rs

/root/repo/target/release/deps/pooled_determinism-eb4ca138a3c2dfc7: crates/core/tests/pooled_determinism.rs

crates/core/tests/pooled_determinism.rs:
