/root/repo/target/release/deps/properties-22b1a403566a7107.d: crates/models/tests/properties.rs

/root/repo/target/release/deps/properties-22b1a403566a7107: crates/models/tests/properties.rs

crates/models/tests/properties.rs:
