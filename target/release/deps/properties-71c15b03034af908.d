/root/repo/target/release/deps/properties-71c15b03034af908.d: crates/kernels/tests/properties.rs

/root/repo/target/release/deps/properties-71c15b03034af908: crates/kernels/tests/properties.rs

crates/kernels/tests/properties.rs:
