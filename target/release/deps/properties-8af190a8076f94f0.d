/root/repo/target/release/deps/properties-8af190a8076f94f0.d: crates/sampler/tests/properties.rs

/root/repo/target/release/deps/properties-8af190a8076f94f0: crates/sampler/tests/properties.rs

crates/sampler/tests/properties.rs:
