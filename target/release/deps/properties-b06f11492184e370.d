/root/repo/target/release/deps/properties-b06f11492184e370.d: crates/fixed/tests/properties.rs

/root/repo/target/release/deps/properties-b06f11492184e370: crates/fixed/tests/properties.rs

crates/fixed/tests/properties.rs:
