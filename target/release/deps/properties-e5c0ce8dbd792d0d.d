/root/repo/target/release/deps/properties-e5c0ce8dbd792d0d.d: crates/rng/tests/properties.rs

/root/repo/target/release/deps/properties-e5c0ce8dbd792d0d: crates/rng/tests/properties.rs

crates/rng/tests/properties.rs:
