/root/repo/target/release/deps/robustness_diagnostics-01abf925d07571fc.d: crates/bench/src/bin/robustness_diagnostics.rs

/root/repo/target/release/deps/robustness_diagnostics-01abf925d07571fc: crates/bench/src/bin/robustness_diagnostics.rs

crates/bench/src/bin/robustness_diagnostics.rs:
