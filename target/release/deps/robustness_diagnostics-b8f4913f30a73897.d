/root/repo/target/release/deps/robustness_diagnostics-b8f4913f30a73897.d: crates/bench/src/bin/robustness_diagnostics.rs

/root/repo/target/release/deps/robustness_diagnostics-b8f4913f30a73897: crates/bench/src/bin/robustness_diagnostics.rs

crates/bench/src/bin/robustness_diagnostics.rs:
