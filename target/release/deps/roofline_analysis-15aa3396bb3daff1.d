/root/repo/target/release/deps/roofline_analysis-15aa3396bb3daff1.d: crates/bench/src/bin/roofline_analysis.rs

/root/repo/target/release/deps/roofline_analysis-15aa3396bb3daff1: crates/bench/src/bin/roofline_analysis.rs

crates/bench/src/bin/roofline_analysis.rs:
