/root/repo/target/release/deps/roofline_analysis-7b6cd0ab6732a70e.d: crates/bench/src/bin/roofline_analysis.rs

/root/repo/target/release/deps/roofline_analysis-7b6cd0ab6732a70e: crates/bench/src/bin/roofline_analysis.rs

crates/bench/src/bin/roofline_analysis.rs:
