/root/repo/target/release/deps/samplers-dfc0552b08c163f5.d: crates/bench/benches/samplers.rs

/root/repo/target/release/deps/samplers-dfc0552b08c163f5: crates/bench/benches/samplers.rs

crates/bench/benches/samplers.rs:
