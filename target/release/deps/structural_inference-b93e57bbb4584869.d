/root/repo/target/release/deps/structural_inference-b93e57bbb4584869.d: tests/structural_inference.rs

/root/repo/target/release/deps/structural_inference-b93e57bbb4584869: tests/structural_inference.rs

tests/structural_inference.rs:
