/root/repo/target/release/deps/table1_workloads-8c52052883db89e5.d: crates/bench/src/bin/table1_workloads.rs

/root/repo/target/release/deps/table1_workloads-8c52052883db89e5: crates/bench/src/bin/table1_workloads.rs

crates/bench/src/bin/table1_workloads.rs:
