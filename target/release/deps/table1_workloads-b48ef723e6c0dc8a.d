/root/repo/target/release/deps/table1_workloads-b48ef723e6c0dc8a.d: crates/bench/src/bin/table1_workloads.rs

/root/repo/target/release/deps/table1_workloads-b48ef723e6c0dc8a: crates/bench/src/bin/table1_workloads.rs

crates/bench/src/bin/table1_workloads.rs:
