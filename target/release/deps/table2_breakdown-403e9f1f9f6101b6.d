/root/repo/target/release/deps/table2_breakdown-403e9f1f9f6101b6.d: crates/bench/src/bin/table2_breakdown.rs

/root/repo/target/release/deps/table2_breakdown-403e9f1f9f6101b6: crates/bench/src/bin/table2_breakdown.rs

crates/bench/src/bin/table2_breakdown.rs:
