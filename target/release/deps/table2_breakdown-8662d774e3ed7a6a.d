/root/repo/target/release/deps/table2_breakdown-8662d774e3ed7a6a.d: crates/bench/src/bin/table2_breakdown.rs

/root/repo/target/release/deps/table2_breakdown-8662d774e3ed7a6a: crates/bench/src/bin/table2_breakdown.rs

crates/bench/src/bin/table2_breakdown.rs:
