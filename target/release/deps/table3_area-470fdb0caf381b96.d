/root/repo/target/release/deps/table3_area-470fdb0caf381b96.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/release/deps/table3_area-470fdb0caf381b96: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
