/root/repo/target/release/deps/table3_area-753dc0532f84ed41.d: crates/bench/src/bin/table3_area.rs

/root/repo/target/release/deps/table3_area-753dc0532f84ed41: crates/bench/src/bin/table3_area.rs

crates/bench/src/bin/table3_area.rs:
