/root/repo/target/release/deps/table4_end_to_end-264543a5db3a6495.d: crates/bench/src/bin/table4_end_to_end.rs

/root/repo/target/release/deps/table4_end_to_end-264543a5db3a6495: crates/bench/src/bin/table4_end_to_end.rs

crates/bench/src/bin/table4_end_to_end.rs:
