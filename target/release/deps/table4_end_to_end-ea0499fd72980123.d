/root/repo/target/release/deps/table4_end_to_end-ea0499fd72980123.d: crates/bench/src/bin/table4_end_to_end.rs

/root/repo/target/release/deps/table4_end_to_end-ea0499fd72980123: crates/bench/src/bin/table4_end_to_end.rs

crates/bench/src/bin/table4_end_to_end.rs:
