/root/repo/target/release/examples/chain_doctor-bb436bb3c258635f.d: examples/chain_doctor.rs

/root/repo/target/release/examples/chain_doctor-bb436bb3c258635f: examples/chain_doctor.rs

examples/chain_doctor.rs:
