/root/repo/target/release/examples/denoise_to_image-f4cf6228ea6198dc.d: examples/denoise_to_image.rs

/root/repo/target/release/examples/denoise_to_image-f4cf6228ea6198dc: examples/denoise_to_image.rs

examples/denoise_to_image.rs:
