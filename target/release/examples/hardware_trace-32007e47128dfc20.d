/root/repo/target/release/examples/hardware_trace-32007e47128dfc20.d: examples/hardware_trace.rs

/root/repo/target/release/examples/hardware_trace-32007e47128dfc20: examples/hardware_trace.rs

examples/hardware_trace.rs:
