/root/repo/target/release/examples/image_restoration-a8840779efe2219a.d: examples/image_restoration.rs

/root/repo/target/release/examples/image_restoration-a8840779efe2219a: examples/image_restoration.rs

examples/image_restoration.rs:
