/root/repo/target/release/examples/medical_diagnosis-cbd218b34c24dd76.d: examples/medical_diagnosis.rs

/root/repo/target/release/examples/medical_diagnosis-cbd218b34c24dd76: examples/medical_diagnosis.rs

examples/medical_diagnosis.rs:
