/root/repo/target/release/examples/quickstart-661b8252cb062afd.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-661b8252cb062afd: examples/quickstart.rs

examples/quickstart.rs:
