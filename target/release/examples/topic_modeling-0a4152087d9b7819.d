/root/repo/target/release/examples/topic_modeling-0a4152087d9b7819.d: examples/topic_modeling.rs

/root/repo/target/release/examples/topic_modeling-0a4152087d9b7819: examples/topic_modeling.rs

examples/topic_modeling.rs:
