//! End-to-end Bayesian-network integration: Gibbs marginals against exact
//! variable-elimination posteriors across all three Table I networks.

use coopmc::core::experiments::bn_marginal_mse;
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::bn::{asia, earthquake, survey, BayesNet};

fn networks() -> Vec<(&'static str, BayesNet)> {
    vec![
        ("asia", asia()),
        ("earthquake", earthquake()),
        ("survey", survey()),
    ]
}

/// Float Gibbs converges to the exact marginals on every network.
#[test]
fn float_gibbs_matches_exact_on_all_networks() {
    for (name, net) in networks() {
        let mse = bn_marginal_mse(&net, PipelineConfig::float32(), 6000, 600, 77);
        assert!(mse < 6e-3, "{name}: float Gibbs MSE {mse}");
    }
}

/// The CoopMC datapath at the paper's BN threshold (size 128) stays close
/// to the float result (Fig. 12's saturation region).
#[test]
fn coopmc_lut128_tracks_float_on_all_networks() {
    for (name, net) in networks() {
        let float = bn_marginal_mse(&net, PipelineConfig::float32(), 5000, 500, 11);
        let coop = bn_marginal_mse(&net, PipelineConfig::coopmc(128, 16), 5000, 500, 11);
        assert!(
            coop < float + 0.02,
            "{name}: lut128x16 MSE {coop} vs float {float}"
        );
    }
}

/// Severely reduced LUT precision degrades BN inference (the left edge of
/// Fig. 12) — BNs are more precision-sensitive than MRFs because the factor
/// values themselves are the signal.
#[test]
fn starved_lut_degrades_bn_inference() {
    let net = earthquake();
    let good = bn_marginal_mse(&net, PipelineConfig::coopmc(128, 16), 5000, 500, 5);
    let bad = bn_marginal_mse(&net, PipelineConfig::coopmc(4, 1), 5000, 500, 5);
    assert!(
        bad > 2.0 * good + 1e-3,
        "size-4/1-bit LUT must hurt: {bad} vs {good}"
    );
}

/// Evidence propagates end to end: clamping a symptom shifts the estimated
/// cause marginal in the same direction as exact inference.
#[test]
fn evidence_shifts_marginals_in_the_right_direction() {
    use coopmc::core::engine::{GibbsEngine, RunStats};
    use coopmc::models::bn::{exact_marginal, MarginalCounter};
    use coopmc::rng::SplitMix64;
    use coopmc::sampler::TreeSampler;

    let mut net = earthquake();
    let alarm = net.node_index("alarm").unwrap();
    let burglary = net.node_index("burglary").unwrap();
    net.set_evidence(alarm, 0);

    let exact = exact_marginal(&net, burglary)[0];
    let prior = 0.01;
    assert!(
        exact > 10.0 * prior,
        "alarm evidence must raise P(burglary)"
    );

    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(256, 16).build(),
        TreeSampler::new(),
        SplitMix64::new(3),
    );
    let mut counter = MarginalCounter::new(&net);
    let mut stats = RunStats::default();
    for it in 0..8000u64 {
        engine.sweep(&mut net, &mut stats);
        if it >= 500 {
            counter.record(&net);
        }
    }
    let gibbs = counter.marginal(burglary)[0];
    assert!(
        (gibbs - exact).abs() < 0.05,
        "gibbs {gibbs} vs exact {exact}"
    );
}
