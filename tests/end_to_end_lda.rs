//! End-to-end LDA integration: collapsed Gibbs through the CoopMC datapath
//! recovers planted topic structure (the Fig. 13 claims).

use coopmc::core::experiments::{lda_converged_loglik, lda_trace};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::lda::{synthetic_corpus, Corpus, CorpusSpec, Lda};

fn workload() -> (Corpus, Lda) {
    let spec = CorpusSpec {
        n_docs: 40,
        n_vocab: 120,
        n_topics: 6,
        doc_len: 40,
        topics_per_doc: 2,
        seed: 13,
    };
    let corpus = synthetic_corpus(&spec);
    // Low alpha: small corpora need a sparse doc-topic prior for the
    // planted structure to crystallize.
    let mut lda = Lda::new(&corpus, 6, 0.5, 0.01);
    lda.randomize_topics(7);
    (corpus, lda)
}

/// Float collapsed Gibbs improves the log-likelihood substantially from the
/// random initialization.
#[test]
fn float_lda_improves_loglik() {
    let (_, lda) = workload();
    let trace = lda_trace(&lda, PipelineConfig::float32(), 25, 3);
    let first = trace.samples()[0].1;
    let last = trace.last_value().unwrap();
    assert!(last > first + 0.05 * first.abs(), "{first} -> {last}");
}

/// Fig. 13's saturation: size_lut 128 with 16-bit entries reaches the float
/// likelihood; a starved LUT does not.
#[test]
fn lut_precision_ordering_matches_fig13() {
    let (_, lda) = workload();
    let float = lda_converged_loglik(&lda, PipelineConfig::float32(), 25, 5);
    let good = lda_converged_loglik(&lda, PipelineConfig::coopmc(128, 16), 25, 5);
    let starved = lda_converged_loglik(&lda, PipelineConfig::coopmc(8, 2), 25, 5);
    let slack = 0.03 * float.abs();
    assert!(good > float - slack, "lut128x16 {good} vs float {float}");
    assert!(
        starved < good - slack / 3.0,
        "starved LUT must trail: {starved} vs {good}"
    );
}

/// The planted band structure is recovered: after training, each planted
/// band's tokens concentrate in few inferred topics (purity check).
#[test]
fn planted_topics_are_recovered() {
    use coopmc::core::engine::GibbsEngine;
    use coopmc::models::GibbsModel;
    use coopmc::rng::SplitMix64;
    use coopmc::sampler::TreeSampler;

    let (corpus, mut lda) = workload();
    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(128, 16).build(),
        TreeSampler::new(),
        SplitMix64::new(99),
    );
    engine.run(&mut lda, 30);

    // For each vocabulary band, find the dominant inferred topic and compute
    // the fraction of the band's tokens assigned to it.
    let band = 120usize.div_ceil(6);
    let mut purity_sum = 0.0;
    for b in 0..6 {
        let mut counts = [0usize; 6];
        let mut total = 0usize;
        for (i, &(_, w)) in corpus.tokens.iter().enumerate() {
            if (w as usize) / band == b {
                counts[lda.label(i)] += 1;
                total += 1;
            }
        }
        purity_sum += *counts.iter().max().unwrap() as f64 / total.max(1) as f64;
    }
    let mean_purity = purity_sum / 6.0;
    assert!(
        mean_purity > 0.55,
        "planted bands should map to dominant topics; purity {mean_purity}"
    );
}

/// Count-table invariants hold through a full engine run.
#[test]
fn count_tables_remain_consistent() {
    use coopmc::core::engine::GibbsEngine;
    use coopmc::rng::SplitMix64;
    use coopmc::sampler::SequentialSampler;

    let (corpus, mut lda) = workload();
    let mut engine = GibbsEngine::new(
        PipelineConfig::float32().build(),
        SequentialSampler::new(),
        SplitMix64::new(4),
    );
    engine.run(&mut lda, 5);

    let total: u32 = (0..lda.n_topics()).map(|k| lda.topic_total(k)).sum();
    assert_eq!(total as usize, corpus.tokens.len());
    for k in 0..lda.n_topics() {
        let vt_sum: u32 = (0..lda.n_vocab()).map(|v| lda.vt(k, v)).sum();
        assert_eq!(
            vt_sum,
            lda.topic_total(k),
            "VT column sum mismatch for topic {k}"
        );
    }
    let mut dt_sum: u32 = 0;
    for d in 0..lda.n_docs() {
        for k in 0..lda.n_topics() {
            dt_sum += lda.dt(d, k);
        }
    }
    assert_eq!(dt_sum as usize, corpus.tokens.len());
}
