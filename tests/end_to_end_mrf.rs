//! End-to-end MRF integration: the Fig. 2 / Fig. 10 claims across crates —
//! model → pipeline → sampler → metrics.

use coopmc::core::experiments::{mrf_converged_nmse, mrf_golden, mrf_trace};
use coopmc::core::pipeline::PipelineConfig;
use coopmc::models::mrf::{image_restoration, stereo_matching};

/// Fig. 2: at 64 labels, a 4-bit exp kernel without DyNorm cannot converge
/// (the sampler degenerates to uniform choice), while the same kernel with
/// DyNorm matches float32.
#[test]
fn dynorm_rescues_low_precision_restoration() {
    let app = image_restoration(32, 24, 21);
    let golden = mrf_golden(&app, 50, 500);

    let float = mrf_converged_nmse(&app, PipelineConfig::float32(), 25, 9, &golden);
    let fixed4 = mrf_converged_nmse(&app, PipelineConfig::fixed(4), 25, 9, &golden);
    let fixed4_dn = mrf_converged_nmse(&app, PipelineConfig::fixed_dynorm(4), 25, 9, &golden);
    let fixed8_dn = mrf_converged_nmse(&app, PipelineConfig::fixed_dynorm(8), 25, 9, &golden);

    assert!(
        fixed4 > 10.0 * float.max(0.05),
        "4-bit without DyNorm must fail: {fixed4} vs float {float}"
    );
    assert!(
        fixed4_dn < 2.0 * float.max(0.05),
        "4-bit with DyNorm must track float: {fixed4_dn} vs {float}"
    );
    assert!(
        (fixed8_dn - float).abs() < 0.15,
        "8-bit with DyNorm must match float: {fixed8_dn} vs {float}"
    );
}

/// Fig. 7: on stereo matching, the full CoopMC datapath with a modest LUT
/// (size 32, 8-bit) reaches float-level quality.
#[test]
fn coopmc_lut_matches_float_on_stereo() {
    let app = stereo_matching(32, 24, 31);
    let golden = mrf_golden(&app, 50, 501);

    let float = mrf_converged_nmse(&app, PipelineConfig::float32(), 25, 3, &golden);
    let coop = mrf_converged_nmse(&app, PipelineConfig::coopmc(32, 8), 25, 3, &golden);
    let coop_big = mrf_converged_nmse(&app, PipelineConfig::coopmc(1024, 32), 25, 3, &golden);

    assert!(
        (coop - float).abs() < 0.15,
        "lut32x8 {coop} vs float {float}"
    );
    assert!(
        (coop_big - float).abs() < 0.15,
        "lut1024x32 {coop_big} vs float {float}"
    );
}

/// A tiny LUT (size 4) cannot resolve the cost structure and must be
/// measurably worse than the float reference — the left edge of Fig. 7.
#[test]
fn tiny_lut_degrades_quality() {
    let app = stereo_matching(32, 24, 41);
    let golden = mrf_golden(&app, 50, 502);
    let float = mrf_converged_nmse(&app, PipelineConfig::float32(), 25, 5, &golden);
    let tiny = mrf_converged_nmse(&app, PipelineConfig::coopmc(4, 2), 25, 5, &golden);
    assert!(
        tiny > float + 0.05,
        "size-4 LUT should degrade: {tiny} vs {float}"
    );
}

/// Convergence is monotone-ish: the normalized MSE at iteration 20 must be
/// well below iteration 1 for every viable datapath.
#[test]
fn traces_descend_for_viable_datapaths() {
    let app = stereo_matching(24, 24, 51);
    let golden = mrf_golden(&app, 40, 503);
    for config in [
        PipelineConfig::float32(),
        PipelineConfig::fixed_dynorm(8),
        PipelineConfig::coopmc(64, 8),
    ] {
        let trace = mrf_trace(&app, config, 20, 1, &golden);
        let early = trace.samples()[1].1;
        let late = trace.last_value().unwrap();
        assert!(late < early, "{:?}: {early} -> {late}", config);
    }
}
