//! Integration tests for the extension subsystems: parallel scheduling,
//! alternative MCMC drivers, diagnostics, alias sampling and the
//! missing-data (inpainting) path — all exercised through the public facade.

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::metropolis::{icm_sweep, MetropolisEngine};
use coopmc::core::parallel::ChromaticEngine;
use coopmc::core::pipeline::{CoopMcPipeline, FloatPipeline, PipelineConfig};
use coopmc::models::bn::{cancer, exact_marginal, sprinkler, MarginalCounter};
use coopmc::models::coloring::{verify_coloring, ChromaticModel};
use coopmc::models::diagnostics::{
    effective_sample_size, empirical_distribution, gelman_rubin, total_variation,
};
use coopmc::models::mrf::image_restoration;
use coopmc::models::GibbsModel;
use coopmc::rng::SplitMix64;
use coopmc::sampler::{AliasSampler, Sampler, TreeSampler};

/// The chromatic engine with the CoopMC datapath converges to the same
/// quality as the sequential engine on a 64-label workload with missing
/// data (the hardest MRF configuration in the suite).
#[test]
fn chromatic_coopmc_matches_sequential_on_restoration() {
    let app = image_restoration(32, 24, 99);
    let mut seq = app.mrf.clone();
    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(64, 8).build(),
        TreeSampler::new(),
        SplitMix64::new(1),
    );
    engine.run(&mut seq, 25);

    let mut par = app.mrf.clone();
    ChromaticEngine::new(CoopMcPipeline::new(64, 8), 4, 1).run(&mut par, 25);

    let e_seq = seq.energy();
    let e_par = par.energy();
    let rel = (e_seq - e_par).abs() / e_seq.max(1.0);
    assert!(rel < 0.1, "sequential {e_seq} vs chromatic {e_par}");
}

/// BN colorings from the moral graph are valid chromatic partitions for
/// every network in the suite.
#[test]
fn bn_moral_colorings_are_valid() {
    use coopmc::models::bn::{asia, earthquake, survey};
    for net in [asia(), earthquake(), survey(), cancer(), sprinkler()] {
        let classes = net.color_classes();
        // Build the moral adjacency the same way the impl does and verify
        // class validity against it.
        let n = net.num_variables();
        let mut adjacency = vec![std::collections::BTreeSet::new(); n];
        for (i, node) in net.nodes().iter().enumerate() {
            for &p in &node.parents {
                adjacency[i].insert(p);
                adjacency[p].insert(i);
                for &q in &node.parents {
                    if q != p {
                        adjacency[p].insert(q);
                    }
                }
            }
        }
        let adjacency: Vec<Vec<usize>> = adjacency
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        assert!(verify_coloring(&adjacency, &classes));
    }
}

/// Metropolis–Hastings through the CoopMC datapath agrees with exact
/// inference on the sprinkler network.
#[test]
fn metropolis_coopmc_matches_exact_on_sprinkler() {
    let mut net = sprinkler();
    let w = net.node_index("wetgrass").unwrap();
    net.set_evidence(w, 0);
    let r = net.node_index("rain").unwrap();
    let exact = exact_marginal(&net, r)[0];

    let mut mh = MetropolisEngine::new(CoopMcPipeline::new(256, 16), SplitMix64::new(3));
    let mut counter = MarginalCounter::new(&net);
    let mut stats = RunStats::default();
    for it in 0..30_000u64 {
        mh.sweep(&mut net, &mut stats);
        if it >= 1000 {
            counter.record(&net);
        }
    }
    let est = counter.marginal(r)[0];
    assert!((est - exact).abs() < 0.03, "MH {est} vs exact {exact}");
}

/// ICM through the float pipeline is a strict energy descent that the
/// missing-data path does not break.
#[test]
fn icm_descends_with_missing_data() {
    let mut app = image_restoration(24, 20, 5);
    let pipeline = FloatPipeline::new();
    let e0 = app.mrf.energy();
    let mut sweeps = 0;
    while icm_sweep(&mut app.mrf, &pipeline) > 0 && sweeps < 100 {
        sweeps += 1;
    }
    assert!(app.mrf.energy() < e0);
    assert!(sweeps < 100, "ICM must reach a fixed point");
}

/// Diagnostics flag a deliberately broken chain and pass a healthy one.
#[test]
fn diagnostics_separate_healthy_from_broken_chains() {
    // Healthy: four float chains on the same workload.
    let chain = |seed: u64| {
        let app = image_restoration(16, 12, 3);
        let mut model = app.mrf.clone();
        let mut engine = GibbsEngine::new(
            PipelineConfig::float32().build(),
            TreeSampler::new(),
            SplitMix64::new(seed),
        );
        let mut stats = RunStats::default();
        let mut out = Vec::new();
        for _ in 0..70 {
            engine.sweep(&mut model, &mut stats);
            out.push(model.energy());
        }
        out[20..].to_vec()
    };
    let healthy: Vec<Vec<f64>> = (0..4).map(chain).collect();
    let r_healthy = gelman_rubin(&healthy);
    assert!(r_healthy < 1.3, "healthy R-hat {r_healthy}");
    assert!(effective_sample_size(&healthy[0]) >= 1.0);

    // Broken: chains pinned at different constants (a stuck sampler).
    let broken = vec![vec![1.0; 20], vec![5.0; 20], vec![9.0; 20]];
    assert!(gelman_rubin(&broken).is_infinite());
}

/// The alias sampler is statistically interchangeable with the tree
/// sampler (total variation of empirical distributions is small).
#[test]
fn alias_and_tree_samplers_are_statistically_equal() {
    let probs = [2.0, 1.0, 4.0, 3.0];
    let draws = 30_000;
    let run = |sampler: &dyn Sampler, seed: u64| {
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<usize> = (0..draws)
            .map(|_| sampler.sample(&probs, &mut rng).label)
            .collect();
        empirical_distribution(&samples, 4)
    };
    let tree = run(&TreeSampler::new(), 11);
    let alias = run(&AliasSampler::new(), 12);
    let tv = total_variation(&tree, &alias);
    assert!(tv < 0.02, "samplers must agree: TV {tv}");
}

/// Missing-data restoration actually inpaints: masked pixels end up closer
/// to the clean image than the black observations they started from.
#[test]
fn restoration_inpaints_masked_boxes() {
    let app = image_restoration(40, 30, 77);
    let masked: Vec<usize> = (0..app.mrf.num_variables())
        .filter(|&i| !app.mrf.data_mask()[i])
        .collect();
    assert!(!masked.is_empty(), "workload must contain occlusion boxes");
    let se = |labels: &[usize]| -> f64 {
        masked
            .iter()
            .map(|&i| (labels[i] as f64 - app.clean[i] as f64).powi(2))
            .sum::<f64>()
            / masked.len() as f64
    };
    let initial = se(&app.mrf.labels());
    let mut model = app.mrf.clone();
    let mut engine = GibbsEngine::new(
        PipelineConfig::coopmc(64, 8).build(),
        TreeSampler::new(),
        SplitMix64::new(8),
    );
    engine.run(&mut model, 80);
    let restored = se(&model.labels());
    assert!(
        restored < initial / 2.0,
        "inpainting must recover masked pixels: {initial} -> {restored}"
    );
}
