//! Integration checks of the paper's headline hardware claims against the
//! calibrated models.

use coopmc::hw::accel::case_study_table;
use coopmc::hw::area::{pg_alu_area, sampler_area, PgAluDesign, SamplerKind};
use coopmc::hw::roofline::roofline;
use coopmc::sampler::{PipeTreeSampler, Sampler, SequentialSampler, TreeSampler};

/// Abstract §1: "shrink ALU area by 7.5×".
#[test]
fn alu_area_reduction_headline() {
    let baseline = pg_alu_area(PgAluDesign::DividerBaseline { bits: 32 }).total();
    let coopmc = pg_alu_area(PgAluDesign::DynormLogFusionTableExp {
        bits: 32,
        pipelines: 8,
        size_lut: 1024,
        bit_lut: 32,
    })
    .total();
    let reduction = baseline / coopmc;
    assert!(
        (7.0..8.2).contains(&reduction),
        "ALU reduction {reduction} (paper: 7.5x)"
    );
}

/// Abstract: "O(N) to O(log N), an 8.7× speedup" at 64 labels.
#[test]
fn sampler_speedup_headline() {
    let seq = SequentialSampler::new().latency_cycles(64) as f64;
    let tree = TreeSampler::new().latency_cycles(64) as f64;
    let speedup = seq / tree;
    assert!(
        (8.0..9.5).contains(&speedup),
        "sampler speedup {speedup} (paper: 8.7x)"
    );
}

/// Abstract: "1.9× better area efficiency than the existing state-of-the-art
/// Gibbs sampling architecture" at 64 labels.
#[test]
fn sampler_area_efficiency_headline() {
    let seq_area = sampler_area(SamplerKind::Sequential, 64, 32).total();
    let tree_area = sampler_area(SamplerKind::Tree, 64, 32).total();
    let speedup = SequentialSampler::new().latency_cycles(64) as f64
        / TreeSampler::new().latency_cycles(64) as f64;
    let efficiency_gain = speedup / (tree_area / seq_area);
    assert!(
        (1.5..2.4).contains(&efficiency_gain),
        "area-efficiency gain {efficiency_gain} (paper: 1.9x)"
    );
}

/// Abstract: "33% logic area reduction, 62% power reduction" for V_PG, and
/// "1.53× speedup" for the combined design.
#[test]
fn table4_shape() {
    let rows = case_study_table();
    let names: Vec<&str> = rows.iter().map(|(r, _, _, _)| r.config.name).collect();
    assert_eq!(names, vec!["V_Baseline", "V_PG", "V_TS", "V_PG+TS"]);

    let (_, vpg_area, vpg_power, _) = rows[1];
    assert!(vpg_area < 0.75, "V_PG area ratio {vpg_area} (paper: 0.67)");
    assert!(
        vpg_power < 0.65,
        "V_PG power ratio {vpg_power} (paper prose: 0.38)"
    );

    let (_, vts_area, _, vts_speed) = rows[2];
    assert!(vts_area > 1.5, "V_TS area ratio {vts_area} (paper: 1.77)");
    assert!(vts_speed > 1.4, "V_TS speedup {vts_speed} (paper: 1.59)");

    let (_, combo_area, combo_power, combo_speed) = rows[3];
    assert!(
        combo_speed > 1.4,
        "V_PG+TS speedup {combo_speed} (paper: 1.53)"
    );
    assert!(
        combo_area < vts_area,
        "combined design must shrink versus V_TS"
    );
    assert!(
        combo_power < rows[2].2,
        "combined design must use less power than V_TS"
    );
}

/// §IV-D: every modelled core stays under the 32-bit SRAM bandwidth roof.
#[test]
fn all_cores_compute_bound() {
    for (report, _, _, speedup) in case_study_table() {
        let r = roofline(report.cycles_per_variable);
        assert!(
            r.compute_bound,
            "{} ({speedup}x) must be compute-bound",
            report.config.name
        );
        assert!(r.threshold_bits_per_cycle < 32.0);
    }
}

/// Fig. 15: the pipelined tree sampler dominates throughput per area at
/// every label count, and the plain tree sampler beats sequential at the
/// paper's 64-label design point.
#[test]
fn fig15_efficiency_ordering() {
    for n in [4usize, 8, 16, 32, 64, 128] {
        let seq = SequentialSampler::new();
        let tree = TreeSampler::new();
        let pipe = PipeTreeSampler::new();
        let eff = |thr: f64, area: f64| thr / area;
        let e_seq = eff(
            seq.throughput(n),
            sampler_area(SamplerKind::Sequential, n, 32).total(),
        );
        let e_tree = eff(
            tree.throughput(n),
            sampler_area(SamplerKind::Tree, n, 32).total(),
        );
        let e_pipe = eff(
            pipe.throughput(n),
            sampler_area(SamplerKind::PipeTree, n, 32).total(),
        );
        assert!(e_pipe > e_tree && e_pipe > e_seq, "pipe must lead at n={n}");
        if n == 64 {
            assert!(
                e_tree > e_seq,
                "tree must beat sequential at the 64-label design point"
            );
        }
    }
}

/// Fig. 9: speedup grows with label count and is a step function between
/// powers of two.
#[test]
fn fig9_speedup_scaling() {
    let speedup = |n: usize| {
        SequentialSampler::new().latency_cycles(n) as f64
            / TreeSampler::new().latency_cycles(n) as f64
    };
    let mut prev = 0.0;
    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let s = speedup(n);
        assert!(s >= prev, "speedup must be non-decreasing at n={n}");
        prev = s;
    }
    assert!(speedup(128) > 14.0, "128-label speedup {}", speedup(128));
}
