//! End-to-end chain-health integration: monitoring is invisible to the
//! chain (bit-identical labels and chain-visible journal fields with health
//! on vs off), the early-stop controller ends an easy-converging chain well
//! inside its sweep budget with the converged R-hat on record, and health
//! diagnostics are thread-count independent on the chromatic engine.

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::parallel::ChromaticEngine;
use coopmc::core::pipeline::{CoopMcPipeline, PipelineConfig};
use coopmc::models::bn::asia;
use coopmc::models::mrf::image_segmentation;
use coopmc::models::GibbsModel;
use coopmc::obs::health::{ChainHealth, ConvergenceController, Decision, EarlyStop, HealthConfig};
use coopmc::obs::journal::{validate_journal, HEALTH_SCHEMA};
use coopmc::obs::{json, Recorder, TraceRecorder};
use coopmc::rng::SplitMix64;
use coopmc::sampler::TreeSampler;

/// Health config for tests: metrics off so parallel tests don't race on the
/// process-global registry.
fn quiet(cfg: HealthConfig) -> HealthConfig {
    HealthConfig {
        publish_metrics: false,
        ..cfg
    }
}

/// Run a traced single-thread MRF chain, optionally under a health monitor,
/// and return the final labels plus the journal.
fn mrf_chain(sweeps: u64, health: bool) -> (Vec<usize>, String) {
    let mut app = image_segmentation(24, 24, 11);
    let recorder = TraceRecorder::new();
    let mut engine = GibbsEngine::with_recorder(
        PipelineConfig::coopmc(1024, 16).build(),
        TreeSampler::new(),
        SplitMix64::new(9),
        &recorder,
    );
    let mut ctl = health.then(|| {
        EarlyStop::monitor(ChainHealth::new(
            0,
            quiet(HealthConfig {
                refresh_stride: 1,
                ..HealthConfig::default()
            }),
        ))
        .with_recorder(&recorder)
    });
    let mut stats = RunStats::default();
    for _ in 0..sweeps {
        let (u0, f0, fb0) = (stats.updates, stats.flips, stats.uniform_fallbacks);
        engine.sweep(&mut app.mrf, &mut stats);
        let energy = app.mrf.energy();
        recorder.observe_stat(0, engine.journal_iteration(), energy);
        if let Some(c) = ctl.as_mut() {
            c.observe_sweep(
                engine.journal_iteration(),
                stats.updates - u0,
                stats.flips - f0,
                stats.uniform_fallbacks - fb0,
                Some(energy),
            );
        }
    }
    (app.mrf.labels(), recorder.journal_jsonl())
}

/// The chain-visible fields of one `coopmc-journal/1` sweep line (wall-clock
/// fields are nondeterministic and excluded).
fn chain_visible(line: &str) -> (u64, u64, u64, u64, Option<f64>) {
    let v = json::parse(line).expect("journal line must be JSON");
    let int = |k: &str| v.get(k).and_then(|x| x.as_num()).unwrap() as u64;
    (
        int("iteration"),
        int("updates"),
        int("flips"),
        int("uniform_fallbacks"),
        v.get("stat").and_then(|x| x.as_num()),
    )
}

#[test]
fn health_monitoring_is_chain_invisible() {
    let (labels_off, journal_off) = mrf_chain(12, false);
    let (labels_on, journal_on) = mrf_chain(12, true);
    assert_eq!(
        labels_off, labels_on,
        "health observation leaked into the chain"
    );

    // The health-on journal adds coopmc-health/1 lines but leaves every
    // chain-visible sweep field untouched.
    let sweeps = |journal: &str| {
        journal
            .lines()
            .filter(|l| !l.contains(HEALTH_SCHEMA))
            .map(chain_visible)
            .collect::<Vec<_>>()
    };
    assert_eq!(sweeps(&journal_off), sweeps(&journal_on));
    assert_eq!(sweeps(&journal_off).len(), 12);
    assert!(
        journal_on.lines().any(|l| l.contains(HEALTH_SCHEMA)),
        "monitored run must journal health records"
    );
    validate_journal(&journal_on).expect("mixed sweep + health journal must validate");
    validate_journal(&journal_off).expect("plain journal must validate");
}

#[test]
fn early_stop_ends_an_easy_chain_inside_half_the_budget() {
    const BUDGET: u64 = 2000;
    let mut net = asia();
    let recorder = TraceRecorder::new();
    let mut engine = GibbsEngine::with_recorder(
        PipelineConfig::float32().build(),
        TreeSampler::new(),
        SplitMix64::new(2022),
        &recorder,
    );
    let health = ChainHealth::new(0, quiet(HealthConfig::default()));
    let mut ctl = EarlyStop::new(health, 1.01, 50.0).with_recorder(&recorder);
    let mut stats = RunStats::default();
    for _ in 0..BUDGET {
        let (u0, f0, fb0) = (stats.updates, stats.flips, stats.uniform_fallbacks);
        engine.sweep(&mut net, &mut stats);
        let stat = net.joint_prob().ln();
        recorder.observe_stat(0, engine.journal_iteration(), stat);
        let decision = ctl.observe_sweep(
            engine.journal_iteration(),
            stats.updates - u0,
            stats.flips - f0,
            stats.uniform_fallbacks - fb0,
            Some(stat),
        );
        if decision == Decision::Stop {
            break;
        }
    }

    let info = ctl.stop_info();
    assert!(
        info.stopped_early,
        "ASIA must converge under the controller"
    );
    assert!(
        info.iteration < BUDGET / 2,
        "stopped at sweep {} of {BUDGET}: not inside half the budget",
        info.iteration
    );
    let rhat = info.rhat.expect("a stop decision carries R-hat");
    assert!(rhat <= 1.01, "stopped with R-hat {rhat} > threshold");
    assert!(info.ess.expect("a stop decision carries ESS") >= 50.0);

    // The converged diagnostics are on record in the journal.
    let journal = recorder.journal_jsonl();
    validate_journal(&journal).expect("early-stopped journal must validate");
    let journaled_rhat = journal
        .lines()
        .filter(|l| l.contains(HEALTH_SCHEMA))
        .filter_map(|l| json::parse(l).ok())
        .filter_map(|v| v.get("rhat").and_then(|r| r.as_num()))
        .fold(f64::INFINITY, f64::min);
    assert!(
        journaled_rhat <= 1.01,
        "journal's best R-hat {journaled_rhat} never reached the threshold"
    );
}

#[test]
fn chromatic_health_diagnostics_are_thread_count_independent() {
    let run = |threads: usize| {
        let mut app = image_segmentation(16, 16, 8);
        let engine = ChromaticEngine::new(CoopMcPipeline::new(64, 8), threads, 77);
        let mut ctl = EarlyStop::monitor(ChainHealth::new(
            0,
            quiet(HealthConfig {
                refresh_stride: 1,
                ..HealthConfig::default()
            }),
        ));
        engine.run_controlled(&mut app.mrf, 16, |m| Some(m.energy()), &mut ctl);
        (app.mrf.labels(), *ctl.health().record())
    };
    let (labels_1, rec_1) = run(1);
    let (labels_4, rec_4) = run(4);
    assert_eq!(labels_1, labels_4);
    assert_eq!(
        rec_1, rec_4,
        "health diagnostics must not depend on the worker-pool shape"
    );
    assert_eq!(rec_1.iteration, 16);
    assert!(rec_1.ess.is_some() && rec_1.rhat.is_some());
}
