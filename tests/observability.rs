//! End-to-end observability checks: an enabled recorder yields a valid,
//! reconcilable run journal and a loadable Chrome trace, and recording is
//! invisible to the chain itself (thread-count independence holds with
//! tracing on).

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::parallel::ChromaticEngine;
use coopmc::core::pipeline::{FixedPipeline, PipelineConfig};
use coopmc::hw::area::SamplerKind;
use coopmc::hw::reconcile::reconcile;
use coopmc::models::mrf::image_segmentation;
use coopmc::models::GibbsModel;
use coopmc::obs::journal::validate_journal;
use coopmc::obs::{json, Recorder, TraceRecorder};
use coopmc::rng::SplitMix64;
use coopmc::sampler::TreeSampler;

/// Drive a short traced single-thread MRF chain and return the recorder.
fn traced_mrf_chain(sweeps: u64) -> (TraceRecorder, u64, usize) {
    let mut app = image_segmentation(24, 24, 11);
    let n_labels = app.mrf.num_labels(0);
    let recorder = TraceRecorder::new();
    let mut engine = GibbsEngine::with_recorder(
        PipelineConfig::coopmc(1024, 16).build(),
        TreeSampler::new(),
        SplitMix64::new(3),
        &recorder,
    );
    let mut stats = RunStats::default();
    for _ in 0..sweeps {
        engine.sweep(&mut app.mrf, &mut stats);
        recorder.observe_stat(0, engine.journal_iteration(), app.mrf.energy());
    }
    (recorder, stats.updates, n_labels)
}

#[test]
fn traced_chain_journal_is_valid_monotone_and_time_consistent() {
    let (recorder, updates, _) = traced_mrf_chain(5);

    let journal = recorder.journal_jsonl();
    let lines = validate_journal(&journal).expect("journal must self-validate");
    assert_eq!(lines, 5);
    // The observer's per-sweep statistic is joined onto every journal line.
    for line in journal.lines() {
        let v = json::parse(line).expect("journal line must be JSON");
        assert!(
            v.get("stat").and_then(|s| s.as_num()).is_some(),
            "observer stat missing from journal line: {line}"
        );
    }

    let sweeps = recorder.sweeps();
    assert_eq!(sweeps.len(), 5);
    let mut total_updates = 0;
    for (i, s) in sweeps.iter().enumerate() {
        assert_eq!(s.iteration, i as u64 + 1, "1-based, strictly increasing");
        assert_eq!(s.chain, 0);
        // Phase wall times are consistent: each phase fits in the sweep.
        for phase_ns in [s.pg_ns, s.sd_ns, s.pu_ns] {
            assert!(
                phase_ns <= s.wall_ns,
                "phase time {phase_ns}ns exceeds sweep wall {}ns",
                s.wall_ns
            );
        }
        // The CoopMC pipeline runs DyNorm + TableExp, so NormTree and
        // exp-input telemetry must be populated with a sane range.
        let (lo, hi) = (s.exp_in_min.unwrap(), s.exp_in_max.unwrap());
        assert!(lo <= hi && hi <= 0.0, "post-DyNorm exp inputs must be <= 0");
        assert!(s.norm_max.is_some());
        assert!(s.flips <= s.updates);
        total_updates += s.updates;
    }
    assert_eq!(total_updates, updates);
}

#[test]
fn traced_chain_reconciles_with_the_hw_cycle_model() {
    let (recorder, updates, n_labels) = traced_mrf_chain(4);
    let r = reconcile(&recorder.sweeps(), SamplerKind::Tree, n_labels)
        .expect("journal totals must match the closed-form cycle model");
    assert_eq!(r.updates, updates);
    assert_eq!(r.sd_actual, r.sd_expected);
    assert_eq!(r.pu_actual, r.pu_expected);
    assert!(r.pg_actual > 0);
}

#[test]
fn engine_and_hw_model_agree_on_pu_cycles() {
    // The engine prices PU at a pinned constant; the hardware model carries
    // its own copy. A drift here would silently break reconciliation.
    assert_eq!(
        coopmc::core::engine::PU_CYCLES,
        coopmc::hw::cycles::PU_CYCLES
    );
}

#[test]
fn chrome_trace_export_loads_as_json_with_events() {
    let (recorder, _, _) = traced_mrf_chain(3);
    let trace = recorder.chrome_trace_json();
    let doc = json::parse(&trace).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain span events");
    for e in events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(e.get("name").is_some() && e.get("ts").is_some());
    }
}

#[test]
fn recording_does_not_perturb_the_pooled_chain() {
    // PR 1's thread-count-independence guarantee, now with the recorder ON:
    // idle/busy accounting and journal capture must stay outside the chain.
    let run = |threads: usize| {
        let mut app = image_segmentation(24, 24, 31);
        let recorder = TraceRecorder::new();
        let engine =
            ChromaticEngine::with_recorder(FixedPipeline::new(8, true), threads, 2024, &recorder);
        let updated = engine.run(&mut app.mrf, 6);
        (updated, app.mrf.labels(), recorder.sweeps())
    };
    let (updated_1, labels_1, sweeps_1) = run(1);
    let (updated_8, labels_8, sweeps_8) = run(8);
    assert_eq!(updated_1, updated_8);
    assert_eq!(labels_1, labels_8, "recording leaked into the chain");
    assert_eq!(sweeps_1.len(), 6);
    assert_eq!(sweeps_8.len(), 6);
    for (a, b) in sweeps_1.iter().zip(&sweeps_8) {
        // Chain-visible quantities agree exactly; only wall times differ.
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.flips, b.flips);
        assert_eq!(a.uniform_fallbacks, b.uniform_fallbacks);
        assert_eq!(
            (a.pg_cycles, a.sd_cycles, a.pu_cycles),
            (b.pg_cycles, b.sd_cycles, b.pu_cycles)
        );
        for c in &b.colors {
            assert!((0.0..=1.0).contains(&c.utilization));
            assert!(c.busy_ns <= c.wall_ns.saturating_mul(8));
        }
    }
    // The pool's idle/busy accounting surfaces as process-global gauges.
    let metrics = coopmc::obs::render();
    assert!(metrics.contains("coopmc_pool_worker_busy_ns"));
    assert!(metrics.contains("coopmc_pool_color_utilization"));
}
