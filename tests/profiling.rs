//! End-to-end contracts of the kernel-level span profiler.
//!
//! Four claims, each load-bearing for the observability story:
//!
//! 1. **Golden chains.** With profiling off, the float, CoopMC and
//!    chromatic chains land on the exact label checksums recorded before
//!    the profiler existed — the instrumentation hooks cost nothing and
//!    change nothing when disabled.
//! 2. **Chain invisibility.** With profiling *on*, the chains are
//!    bit-identical to the profile-off chains.
//! 3. **Flamegraph accounting.** The collapsed-stack self times of a real
//!    profiled run sum to the measured wall time of the sweeps (within
//!    5%): no kernel time is double-counted or lost.
//! 4. **Divergence ledger.** The modeled-vs-measured ledger reconciles a
//!    real run at the CLI's shipping tolerance and still *fails* at an
//!    absurdly tight one — the gate is live, not decorative.

use std::time::Instant;

use coopmc::core::engine::{GibbsEngine, RunStats};
use coopmc::core::parallel::ChromaticEngine;
use coopmc::core::pipeline::{CoopMcPipeline, FloatPipeline};
use coopmc::hw::reconcile::divergence_ledger;
use coopmc::models::mrf::image_segmentation;
use coopmc::models::GibbsModel;
use coopmc::obs::{Kernel, NoopRecorder, Profiled, SpanProfiler};
use coopmc::rng::SplitMix64;
use coopmc::sampler::TreeSampler;

/// FNV-1a over the chain's final labels: the golden-checksum fingerprint.
fn label_checksum(labels: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in labels {
        h ^= l as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Sequential chain labels for `pipeline`, optionally profiled.
fn seq_labels<P: coopmc::core::pipeline::ProbabilityPipeline>(
    pipeline: P,
    seed: u64,
    sweeps: u64,
    profiler: Option<&SpanProfiler>,
    dims: (usize, usize, u64),
) -> Vec<usize> {
    let mut app = image_segmentation(dims.0, dims.1, dims.2);
    let mut stats = RunStats::default();
    match profiler {
        Some(p) => {
            let mut engine = GibbsEngine::with_recorder(
                pipeline,
                TreeSampler::new(),
                SplitMix64::new(seed),
                Profiled::new(NoopRecorder, p),
            );
            for _ in 0..sweeps {
                engine.sweep(&mut app.mrf, &mut stats);
            }
        }
        None => {
            let mut engine = GibbsEngine::new(pipeline, TreeSampler::new(), SplitMix64::new(seed));
            for _ in 0..sweeps {
                engine.sweep(&mut app.mrf, &mut stats);
            }
        }
    }
    app.mrf.labels().to_vec()
}

/// Chromatic chain labels, optionally profiled.
fn chromatic_labels(profiler: Option<&SpanProfiler>) -> Vec<usize> {
    let mut app = image_segmentation(20, 16, 21);
    match profiler {
        Some(p) => {
            let engine = ChromaticEngine::with_recorder(CoopMcPipeline::new(64, 8), 3, 909, p);
            for it in 0..6 {
                engine.sweep(&mut app.mrf, it);
            }
        }
        None => {
            let engine = ChromaticEngine::new(CoopMcPipeline::new(64, 8), 3, 909);
            for it in 0..6 {
                engine.sweep(&mut app.mrf, it);
            }
        }
    }
    app.mrf.labels().to_vec()
}

#[test]
fn profile_off_chains_match_pre_profiler_goldens() {
    // Recorded on the commit immediately before the profiler landed; any
    // drift means the hooks are not free when disabled.
    let float = seq_labels(FloatPipeline::new(), 1, 3, None, (12, 12, 3));
    assert_eq!(
        label_checksum(&float),
        0xbfe7_fcc6_87a4_364f,
        "float chain drifted"
    );
    let coopmc = seq_labels(CoopMcPipeline::new(64, 8), 1, 3, None, (12, 12, 3));
    assert_eq!(
        label_checksum(&coopmc),
        0xe515_724a_477e_41fe,
        "coopmc chain drifted"
    );
    let chromatic = chromatic_labels(None);
    assert_eq!(
        label_checksum(&chromatic),
        0xe21b_a970_2601_ecbe,
        "chromatic chain drifted"
    );
}

#[test]
fn profile_on_chains_are_bit_identical_to_profile_off() {
    let p = SpanProfiler::new(1);
    let on = seq_labels(CoopMcPipeline::new(64, 8), 1, 3, Some(&p), (12, 12, 3));
    let off = seq_labels(CoopMcPipeline::new(64, 8), 1, 3, None, (12, 12, 3));
    assert_eq!(on, off, "sequential profiling must be chain-invisible");
    assert!(p.kernel_reports().iter().any(|r| r.kernel == Kernel::Sweep));

    let p = SpanProfiler::new(4);
    let on = chromatic_labels(Some(&p));
    let off = chromatic_labels(None);
    assert_eq!(on, off, "chromatic profiling must be chain-invisible");
}

#[test]
fn flamegraph_self_times_sum_to_measured_wall_within_5_percent() {
    let profiler = SpanProfiler::new(1);
    let mut app = image_segmentation(48, 48, 21);
    let mut engine = GibbsEngine::with_recorder(
        CoopMcPipeline::new(64, 8),
        TreeSampler::new(),
        SplitMix64::new(5),
        Profiled::new(NoopRecorder, &profiler),
    );
    let mut stats = RunStats::default();
    // Every span the engine opens lives inside a sweep, so walling the
    // whole sweep loop leaves only the loop's own bookkeeping unspanned.
    let start = Instant::now();
    for _ in 0..7 {
        engine.sweep(&mut app.mrf, &mut stats);
    }
    let wall_ns = start.elapsed().as_nanos() as f64;

    // Collapsed-stack lines are "<stack> <self_ns>"; summing every line's
    // self time reconstructs the inclusive root total.
    let flame_ns: f64 = profiler
        .flamegraph()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("malformed flamegraph line: {l}"))
        })
        .sum();
    let rel = (flame_ns - wall_ns).abs() / wall_ns;
    assert!(
        rel < 0.05,
        "flamegraph self-times ({flame_ns:.0} ns) diverge {:.1}% from the \
         measured wall ({wall_ns:.0} ns)",
        rel * 100.0
    );
}

#[test]
fn divergence_ledger_reconciles_a_real_run_and_the_gate_is_live() {
    let profiler = SpanProfiler::new(1);
    let mut app = image_segmentation(32, 32, 21);
    let mut engine = GibbsEngine::with_recorder(
        CoopMcPipeline::new(64, 8),
        TreeSampler::new(),
        SplitMix64::new(9),
        Profiled::new(NoopRecorder, &profiler),
    );
    let mut stats = RunStats::default();
    for _ in 0..5 {
        engine.sweep(&mut app.mrf, &mut stats);
    }
    let reports = profiler.kernel_reports();

    // The CLI's shipping tolerance must reconcile every gated kernel.
    let ledger = divergence_ledger(&reports, 0.5).expect("ledger must build from a real run");
    ledger
        .check()
        .expect("a real run must reconcile at the shipping tolerance");
    assert!(ledger.report().contains("[not gated]"));

    // And the gate actually fires: no real measurement aligns to 1e-9.
    let tight = divergence_ledger(&reports, 1e-9).expect("ledger must build");
    assert!(
        tight.check().is_err(),
        "an absurdly tight tolerance must fail — otherwise the gate is decorative"
    );
}
