//! Run *actual inference* on the structural circuits: the netlist-level PG
//! core and TreeSampler drive a real Gibbs chain on a real workload, and
//! the chain behaves exactly like the behavioral engine's.
//!
//! This is the strongest end-to-end statement the reproduction makes: the
//! same labels fall out whether the computation runs through the behavioral
//! models or gate-by-gate through the structural netlists.

use coopmc::kernels::exp::{ExpKernel, TableExp};
use coopmc::models::mrf::image_segmentation;
use coopmc::models::{GibbsModel, LabelScore};
use coopmc::rng::{HwRng, SplitMix64};
use coopmc::sampler::{Sampler, TreeSampler};
use coopmc::sim::circuits::{PgCoreCircuit, TreeSamplerCircuit};

/// One Gibbs sweep where PG runs on the structural core and SD on the
/// structural sampler. Returns the labels chosen.
#[allow(clippy::too_many_arguments)]
fn structural_sweep(
    model: &mut dyn GibbsModel,
    pg: &mut PgCoreCircuit,
    sd: &mut TreeSamplerCircuit,
    rng: &mut SplitMix64,
) {
    let mut scores: Vec<LabelScore> = Vec::new();
    for var in 0..model.num_variables() {
        model.scores(var, &mut scores);
        // Pack each label's log-domain score into a single-factor lane.
        let factors: Vec<Vec<f64>> = scores
            .iter()
            .map(|s| match s {
                LabelScore::LogDomain(v) => vec![*v],
                _ => unreachable!("MRF scores are log-domain"),
            })
            .collect();
        let probs = pg.evaluate(&factors);
        let total: f64 = probs.iter().sum();
        let label = if total == 0.0 {
            rng.uniform_index(probs.len())
        } else {
            let t = total * rng.next_f64();
            sd.sample(&probs, t)
        };
        model.update(var, label);
    }
}

/// The behavioral reference for the same chain: identical RNG consumption
/// pattern (one uniform per variable), identical kernels.
fn behavioral_sweep(model: &mut dyn GibbsModel, rng: &mut SplitMix64) {
    let table = TableExp::new(64, 8);
    let sampler = TreeSampler::new();
    let mut scores: Vec<LabelScore> = Vec::new();
    for var in 0..model.num_variables() {
        model.scores(var, &mut scores);
        let mut logs: Vec<f64> = scores
            .iter()
            .map(|s| match s {
                LabelScore::LogDomain(v) => *v,
                _ => unreachable!(),
            })
            .collect();
        let max = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for l in &mut logs {
            *l -= max;
        }
        let probs: Vec<f64> = logs.iter().map(|&x| table.exp(x)).collect();
        let total: f64 = probs.iter().sum();
        let label = if total == 0.0 {
            rng.uniform_index(probs.len())
        } else {
            let t = total * rng.next_f64();
            sampler.sample_with_threshold(&probs, t).label
        };
        model.update(var, label);
    }
}

#[test]
fn structural_and_behavioral_chains_are_bit_identical() {
    let app = image_segmentation(12, 10, 23);

    let mut structural_model = app.mrf.clone();
    let mut pg = PgCoreCircuit::new(2, 1, 64, 8);
    let mut sd = TreeSamplerCircuit::new(2);
    let mut rng_a = SplitMix64::new(55);
    for _ in 0..5 {
        structural_sweep(&mut structural_model, &mut pg, &mut sd, &mut rng_a);
    }

    let mut behavioral_model = app.mrf.clone();
    let mut rng_b = SplitMix64::new(55);
    for _ in 0..5 {
        behavioral_sweep(&mut behavioral_model, &mut rng_b);
    }

    assert_eq!(
        structural_model.labels(),
        behavioral_model.labels(),
        "the gate-level and behavioral chains must be the same chain"
    );
}

#[test]
fn structural_chain_reduces_energy() {
    let app = image_segmentation(12, 10, 29);
    let before = app.mrf.energy();
    let mut model = app.mrf.clone();
    let mut pg = PgCoreCircuit::new(2, 1, 64, 8);
    let mut sd = TreeSamplerCircuit::new(2);
    let mut rng = SplitMix64::new(3);
    for _ in 0..8 {
        structural_sweep(&mut model, &mut pg, &mut sd, &mut rng);
    }
    assert!(model.energy() < before, "{before} -> {}", model.energy());
}
